"""Unit tests for the NIC: TSO, interrupt coalescing, ring, TSQ."""

from repro.host.cpu import CpuCosts, ReceiverCpu
from repro.host.gro import OfficialGro, PrestoGro
from repro.host.nic import Nic
from repro.net.link import Link
from repro.net.packet import ACK, DATA, Packet, Segment, make_ack
from repro.net.port import Port
from repro.sim.engine import Simulator
from repro.units import KB, gbps, usec


class Collector:
    def __init__(self):
        self.segments = []
        self.acks = []

    def on_segment(self, seg):
        self.segments.append(seg)

    def on_ack(self, pkt):
        self.acks.append(pkt)


def make_nic(sim, gro=None, zero_cost=True, **kwargs):
    cpu = ReceiverCpu(sim, CpuCosts(0, 0, 0, 0, 0, 0, 0) if zero_cost else None)
    nic = Nic(sim, gro if gro is not None else OfficialGro(), cpu, **kwargs)
    sink = Collector()
    nic.on_segment = sink.on_segment
    nic.on_ack_packet = sink.on_ack
    return nic, sink


class TxSink:
    """Node collecting what the NIC's port transmits."""

    def __init__(self):
        self.pkts = []

    def receive(self, pkt, in_port):
        self.pkts.append(pkt)


def attach_tx(sim, nic):
    link = Link("h->sw", gbps(10), usec(1))
    port = Port(sim, "h->sw", link, 10_000_000)
    sink = TxSink()
    port.peer = sink
    nic.attach_port(port)
    return sink


def data_segment(size, seq=0, cell=3, mac=77, flow=1):
    return Segment(flow_id=flow, src_host=0, dst_host=1, dst_mac=mac,
                   kind=DATA, seq=seq, end_seq=seq + size, flowcell_id=cell)


class TestTso:
    def test_splits_to_mss(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        tx = attach_tx(sim, nic)
        nic.tx_segment(data_segment(64 * KB))
        sim.run()
        assert len(tx.pkts) == 46  # ceil(65536 / 1448)
        assert sum(p.payload_len for p in tx.pkts) == 64 * KB
        assert all(p.payload_len <= nic.mss for p in tx.pkts)

    def test_replicates_mac_and_flowcell(self):
        """The property Presto relies on: TSO copies header fields to
        every derived packet."""
        sim = Simulator()
        nic, _ = make_nic(sim)
        tx = attach_tx(sim, nic)
        nic.tx_segment(data_segment(10 * KB, cell=9, mac=1234))
        sim.run()
        assert all(p.dst_mac == 1234 and p.flowcell_id == 9 for p in tx.pkts)

    def test_sequence_numbers_contiguous(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        tx = attach_tx(sim, nic)
        nic.tx_segment(data_segment(20 * KB, seq=5000))
        sim.run()
        seq = 5000
        for p in sorted(tx.pkts, key=lambda p: p.seq):
            assert p.seq == seq
            seq = p.end_seq
        assert seq == 5000 + 20 * KB

    def test_ack_is_single_packet(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        tx = attach_tx(sim, nic)
        ack = make_ack(1, 0, 1, ack_seq=100)
        ack.dst_mac = 7
        nic.tx_segment(ack)
        sim.run()
        assert len(tx.pkts) == 1
        assert tx.pkts[0].kind == ACK

    def test_packet_labeler_hook(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        tx = attach_tx(sim, nic)
        macs = iter(range(1000, 2000))
        nic.packet_labeler = lambda p: setattr(p, "dst_mac", next(macs))
        nic.tx_segment(data_segment(10 * KB))
        sim.run()
        assert len({p.dst_mac for p in tx.pkts}) == len(tx.pkts)


def rx_pkt(seq, flow=1, cell=1, kind=DATA, size=1448):
    return Packet(flow_id=flow, src_host=1, dst_host=0, dst_mac=0, kind=kind,
                  seq=seq, payload_len=size if kind == DATA else 0,
                  flowcell_id=cell)


class TestRx:
    def test_coalescing_delays_delivery(self):
        sim = Simulator()
        nic, sink = make_nic(sim, coalesce_ns=usec(15))
        nic.rx(rx_pkt(0))
        sim.run(until=usec(10))
        assert sink.segments == []  # interrupt not fired yet
        sim.run(until=usec(30))
        assert len(sink.segments) == 1

    def test_frame_threshold_triggers_immediate_poll(self):
        sim = Simulator()
        nic, sink = make_nic(sim, coalesce_ns=usec(50), coalesce_frames=4)
        for i in range(4):
            nic.rx(rx_pkt(i * 1448))
        sim.run(until=usec(1))
        assert len(sink.segments) == 1  # merged batch, before 50us

    def test_ring_overflow_drops(self):
        sim = Simulator()
        nic, _ = make_nic(sim, ring_slots=8)
        for i in range(12):
            nic.rx(rx_pkt(i * 1448))
        assert nic.ring_drops == 4

    def test_acks_bypass_gro(self):
        sim = Simulator()
        nic, sink = make_nic(sim)
        nic.rx(rx_pkt(0, kind=ACK))
        sim.run()
        assert len(sink.acks) == 1
        assert sink.segments == []

    def test_busy_cpu_backs_up_ring(self):
        """The small-segment-flooding mechanism: with expensive per-segment
        costs, the ring accumulates while the core is busy."""
        sim = Simulator()
        cpu_costs = CpuCosts(per_segment_ns=50_000, per_merge_pkt_ns=0,
                             per_byte_ns=0, per_ack_ns=0,
                             presto_per_pkt_ns=0, presto_flush_ns=0,
                             presto_per_held_segment_ns=0)
        cpu = ReceiverCpu(sim, cpu_costs)
        nic = Nic(sim, OfficialGro(), cpu, ring_slots=16, coalesce_frames=1)
        delivered = []
        nic.on_segment = delivered.append
        # feed 100 packets of 100 different flows over 100us: each becomes
        # its own segment costing 50us -> core saturates, ring overflows
        for i in range(100):
            sim.schedule(i * usec(1), nic.rx, rx_pkt(0, flow=i))
        sim.run()
        assert nic.ring_drops > 0
        assert cpu.utilization(0, sim.now) > 0.9

    def test_gro_hold_timer_flushes(self):
        sim = Simulator()
        nic, sink = make_nic(sim, gro=PrestoGro(initial_ewma_ns=usec(30)))
        # cell 1 fully delivered
        nic.rx(rx_pkt(0, cell=1))
        sim.run(until=usec(40))
        # cell 3 arrives out of order (boundary gap) -> held
        nic.rx(rx_pkt(4344, cell=3))
        sim.run(until=usec(70))
        held_before = [s for s in sink.segments if s.seq == 4344]
        assert held_before == []
        # eventually the adaptive timeout fires via the NIC timer
        sim.run(until=usec(400))
        assert any(s.seq == 4344 for s in sink.segments)


class TestTsq:
    def test_tx_ok_per_flow(self):
        sim = Simulator()
        nic, _ = make_nic(sim, tsq_bytes=100 * KB)
        attach_tx(sim, nic)
        assert nic.tx_ok(1)
        nic.tx_segment(data_segment(64 * KB, flow=1))
        nic.tx_segment(data_segment(64 * KB, seq=64 * KB, flow=1))
        assert not nic.tx_ok(1)   # >100KB of flow 1 queued
        assert nic.tx_ok(2)       # other flows unaffected
        sim.run()
        assert nic.tx_ok(1)       # drained

    def test_tx_space_callback_fires(self):
        sim = Simulator()
        nic, _ = make_nic(sim, tsq_bytes=100 * KB)
        attach_tx(sim, nic)
        woken = []
        nic.on_tx_space = woken.append
        nic.tx_segment(data_segment(10 * KB, flow=5))
        sim.run()
        assert 5 in woken
