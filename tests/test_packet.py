"""Unit tests for Packet / Segment and GRO-style merging."""

from repro.net.packet import ACK, DATA, Packet, Segment, make_ack
from repro.units import HEADER_BYTES


def pkt(seq, size=1448, cell=1, flow=1, kind=DATA, retx=False):
    return Packet(
        flow_id=flow, src_host=0, dst_host=1, dst_mac=1, kind=kind,
        seq=seq, payload_len=size, flowcell_id=cell, is_retx=retx,
    )


def test_packet_ranges_and_size():
    p = pkt(1000, size=500)
    assert p.end_seq == 1500
    assert p.wire_size == 500 + HEADER_BYTES


def test_segment_from_packet():
    seg = Segment.from_packet(pkt(100, size=200, cell=7))
    assert (seg.seq, seg.end_seq) == (100, 300)
    assert seg.pkt_count == 1
    assert seg.flowcell_id == 7


def test_tail_merge():
    seg = Segment.from_packet(pkt(0))
    assert seg.try_merge(pkt(1448), require_same_flowcell=True)
    assert seg.end_seq == 2896
    assert seg.pkt_count == 2


def test_head_merge():
    seg = Segment.from_packet(pkt(1448))
    assert seg.try_merge(pkt(0), require_same_flowcell=True)
    assert seg.seq == 0


def test_non_contiguous_rejected():
    seg = Segment.from_packet(pkt(0))
    assert not seg.try_merge(pkt(2896), require_same_flowcell=True)


def test_cross_flowcell_merge_controlled_by_flag():
    seg = Segment.from_packet(pkt(0, cell=1))
    other_cell = pkt(1448, cell=2)
    assert not seg.try_merge(other_cell, require_same_flowcell=True)
    assert seg.try_merge(other_cell, require_same_flowcell=False)


def test_cross_flow_merge_rejected():
    seg = Segment.from_packet(pkt(0, flow=1))
    assert not seg.try_merge(pkt(1448, flow=2), require_same_flowcell=False)


def test_retx_does_not_merge_with_original():
    seg = Segment.from_packet(pkt(0))
    assert not seg.try_merge(pkt(1448, retx=True), require_same_flowcell=False)


def test_make_ack():
    ack = make_ack(5, src_host=1, dst_host=0, ack_seq=4096,
                   sack=((5000, 6000),), ts_echo=123)
    assert ack.kind == ACK
    assert ack.payload_len == 0
    assert ack.ack_seq == 4096
    assert ack.sack == ((5000, 6000),)
    assert ack.ts_echo == 123
