"""Property tests for the pooled Packet/Segment lifecycle.

The pools recycle instances across the TSO -> wire -> GRO cycle, so the
whole scheme rests on two invariants:

1. ``alloc()`` resets *every* field — a recycled instance is
   indistinguishable from a freshly constructed one, and no state
   (hops, SACK blocks, GRO timestamps, ...) can leak from one flow's
   packet into another's.
2. Upstream logic is blind to recycling: the flowcell IDs the Presto
   vSwitch stamps stay monotone per flow (stepping by at most one)
   even when every segment it labels is a pool-recycled instance.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.net.packet import ACK, DATA, Packet, Segment, _POOL_MAX
from repro.presto.flowcell import FLOWCELL_BYTES
from repro.presto.vswitch import PrestoLb

sack_blocks = st.lists(
    st.tuples(st.integers(0, 1 << 20), st.integers(0, 1 << 20)), max_size=3
).map(tuple)

packet_fields = st.fixed_dictionaries({
    "flow_id": st.integers(0, 1 << 20),
    "src_host": st.integers(0, 255),
    "dst_host": st.integers(0, 255),
    "dst_mac": st.integers(0, 1 << 16),
    "kind": st.sampled_from([DATA, ACK]),
    "seq": st.integers(0, 1 << 32),
    "payload_len": st.integers(0, 9000),
    "flowcell_id": st.integers(0, 1 << 16),
    "is_retx": st.booleans(),
    "ack_seq": st.integers(0, 1 << 32),
    "sack": sack_blocks,
    "ts": st.integers(0, 1 << 40),
    "ts_echo": st.integers(0, 1 << 40),
})

segment_fields = st.fixed_dictionaries({
    "flow_id": st.integers(0, 1 << 20),
    "src_host": st.integers(0, 255),
    "dst_host": st.integers(0, 255),
    "kind": st.sampled_from([DATA, ACK]),
    "seq": st.integers(0, 1 << 32),
    "end_seq": st.integers(0, 1 << 32),
    "pkt_count": st.integers(0, 64),
    "flowcell_id": st.integers(0, 1 << 16),
    "is_retx": st.booleans(),
    "ack_seq": st.integers(0, 1 << 32),
    "sack": sack_blocks,
    "ts": st.integers(0, 1 << 40),
    "ts_echo": st.integers(0, 1 << 40),
    "dst_mac": st.integers(0, 1 << 16),
})


@given(first=packet_fields, second=packet_fields)
@settings(max_examples=80, deadline=None)
def test_packet_alloc_resets_every_field(first, second):
    Packet._pool.clear()
    junk = Packet.alloc(**first)
    junk.hops = 7  # the wire mutates hop counts in flight
    junk.release()
    recycled = Packet.alloc(**second)
    assert recycled is junk, "pool did not recycle the released packet"
    fresh = Packet(**second)
    for field in Packet.__slots__:
        assert getattr(recycled, field) == getattr(fresh, field), field


@given(first=segment_fields, second=segment_fields)
@settings(max_examples=80, deadline=None)
def test_segment_alloc_resets_every_field(first, second):
    Segment._pool.clear()
    junk = Segment.alloc(**first)
    # GRO mutates these on a held segment before it dies
    junk.created_at = 123
    junk.last_merge_at = 456
    junk.end_seq = junk.end_seq + 1448
    junk.pkt_count += 1
    junk.release()
    recycled = Segment.alloc(**second)
    assert recycled is junk, "pool did not recycle the released segment"
    fresh = Segment(**second)
    for field in Segment.__slots__:
        assert getattr(recycled, field) == getattr(fresh, field), field
    assert recycled.payload_len == fresh.payload_len


def test_pool_is_capped():
    Packet._pool.clear()
    pkts = [
        Packet(flow_id=i, src_host=0, dst_host=1, dst_mac=1, kind=DATA,
               seq=0, payload_len=1448, flowcell_id=1)
        for i in range(_POOL_MAX + 10)
    ]
    for pkt in pkts:
        pkt.release()
    assert len(Packet._pool) == _POOL_MAX
    Packet._pool.clear()


@given(
    sizes=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, FLOWCELL_BYTES)),
        min_size=1, max_size=100,
    )
)
@settings(max_examples=60, deadline=None)
def test_flowcell_ids_monotone_per_flow_with_recycled_segments(sizes):
    """Interleaved flows through the Presto vSwitch, every segment
    recycled between selects: per flow the stamped flowcell ID never
    decreases and never skips."""
    Segment._pool.clear()
    lb = PrestoLb(0, rng=random.Random(42))
    lb.set_schedule(1, [101, 102, 103, 104])
    last: dict = {}
    for flow, size in sizes:
        seg = Segment.alloc(flow_id=flow, src_host=0, dst_host=1,
                            seq=0, end_seq=size)
        lb.select(seg)
        prev = last.get(flow, 0)
        assert seg.flowcell_id >= prev, "flowcell ID went backwards"
        assert seg.flowcell_id - prev <= 1, "flowcell ID skipped"
        assert seg.dst_mac in (101, 102, 103, 104)
        last[flow] = seg.flowcell_id
        seg.release()


def test_exact_boundary_segments_round_robin_with_recycled_segments():
    """64 KB segments whose last byte lands exactly on the flowcell
    boundary, every instance pool-recycled: IDs step by one and the
    stamped labels walk the schedule in order."""
    Segment._pool.clear()
    lb = PrestoLb(0, rng=random.Random(7))
    schedule = [101, 102, 103, 104]
    lb.set_schedule(1, schedule)
    macs, cells = [], []
    for i in range(8):
        seg = Segment.alloc(flow_id=3, src_host=0, dst_host=1,
                            seq=i * FLOWCELL_BYTES,
                            end_seq=(i + 1) * FLOWCELL_BYTES)
        lb.select(seg)
        macs.append(seg.dst_mac)
        cells.append(seg.flowcell_id)
        seg.release()
    assert cells == list(range(1, 9))
    start = schedule.index(macs[0])
    assert macs == [schedule[(start + i) % 4] for i in range(8)]


@given(n=st.integers(1, 120))
@settings(max_examples=30, deadline=None)
def test_tso_disabled_stream_preserves_label_rotation(n):
    """TSO off: MSS-sized segments through the vSwitch still batch into
    64 KB flowcells, one label per cell, consecutive cells landing on
    consecutive schedule entries."""
    Segment._pool.clear()
    mss = 1448
    lb = PrestoLb(0, rng=random.Random(11))
    schedule = [201, 202, 203]
    lb.set_schedule(1, schedule)
    seen = []
    for i in range(n):
        seg = Segment.alloc(flow_id=5, src_host=0, dst_host=1,
                            seq=i * mss, end_seq=(i + 1) * mss)
        lb.select(seg)
        seen.append((seg.flowcell_id, seg.dst_mac))
        seg.release()
    cells = [c for c, _ in seen]
    assert cells == sorted(cells), "flowcell ID went backwards"
    assert all(b - a <= 1 for a, b in zip(cells, cells[1:])), "ID skipped"
    by_cell = {}
    for cell, mac in seen:
        by_cell.setdefault(cell, set()).add(mac)
    assert all(len(m) == 1 for m in by_cell.values()), "label changed mid-cell"
    ordered = [next(iter(by_cell[c])) for c in sorted(by_cell)]
    start = schedule.index(ordered[0])
    assert ordered == [schedule[(start + i) % 3] for i in range(len(ordered))]
