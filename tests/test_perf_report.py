"""Unit tests for the perf suite's reporting/baseline layer."""

import json

from repro.perf.report import (
    SCHEMA,
    check_regression,
    load_baseline,
    render_table,
    results_payload,
    write_bench_json,
)
from repro.perf.suite import BENCHES, MACRO_BENCHES, MICRO_BENCHES, BenchResult


def result(name, kind, events_per_sec, scale=1.0):
    events = 1000
    return BenchResult(
        name=name, kind=kind, wall_s=events / events_per_sec, events=events,
        events_per_sec=events_per_sec, peak_rss_bytes=1 << 25, rounds=3,
        scale=scale,
    )


def baseline_for(results):
    return results_payload(results)


def test_registry_partitions():
    assert set(MICRO_BENCHES) | set(MACRO_BENCHES) == set(BENCHES)
    assert not set(MICRO_BENCHES) & set(MACRO_BENCHES)


def test_payload_without_baseline_has_no_speedup():
    payload = results_payload([result("a", "micro", 100.0)])
    assert payload["schema"] == SCHEMA
    assert "speedup_vs_baseline" not in payload
    assert check_regression(payload) == []


def test_speedup_and_macro_min():
    base = baseline_for([
        result("m1", "micro", 100.0),
        result("M1", "macro", 100.0),
        result("M2", "macro", 100.0),
    ])
    payload = results_payload(
        [result("m1", "micro", 150.0),
         result("M1", "macro", 130.0),
         result("M2", "macro", 120.0)],
        base,
    )
    assert payload["speedup_vs_baseline"]["m1"] == 1.5
    assert payload["macro_speedup_min"] == 1.2


def test_check_regression_gates_micros_only():
    base = baseline_for([
        result("m1", "micro", 100.0),
        result("M1", "macro", 100.0),
    ])
    payload = results_payload(
        [result("m1", "micro", 79.0), result("M1", "macro", 50.0)], base)
    failures = check_regression(payload)
    assert len(failures) == 1 and "m1" in failures[0]
    assert check_regression(payload, max_drop=0.25) == []


def test_scaled_run_never_compares_against_full_scale_baseline():
    """Regression: a --scale 0.25 smoke run used to divide its
    events/sec by the full-scale baseline's and trip the gate."""
    base = baseline_for([result("m1", "micro", 100.0, scale=1.0)])
    payload = results_payload([result("m1", "micro", 30.0, scale=0.25)], base)
    assert "speedup_vs_baseline" not in payload
    assert check_regression(payload) == []


def test_render_table_mentions_macro_min():
    base = baseline_for([result("M1", "macro", 100.0)])
    payload = results_payload([result("M1", "macro", 125.0)], base)
    table = render_table(payload)
    assert "1.25x" in table and "min across macros" in table


def test_write_and_load_roundtrip(tmp_path):
    payload = results_payload([result("a", "micro", 100.0)])
    path = tmp_path / "BENCH_perf.json"
    write_bench_json(payload, str(path))
    assert load_baseline(str(path)) == json.loads(path.read_text())
    assert load_baseline(str(tmp_path / "missing.json")) is None
    (tmp_path / "bad.json").write_text("[]")
    assert load_baseline(str(tmp_path / "bad.json")) is None
