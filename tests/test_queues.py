"""Unit tests for the drop-tail queue."""

import pytest

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.units import HEADER_BYTES


def pkt(size=1000, flow=1):
    return Packet(flow_id=flow, src_host=0, dst_host=1, dst_mac=1,
                  kind="data", seq=0, payload_len=size, flowcell_id=1)


def test_fifo_order():
    q = DropTailQueue(100_000)
    a, b = pkt(), pkt()
    q.enqueue(a)
    q.enqueue(b)
    assert q.dequeue() is a
    assert q.dequeue() is b
    assert q.dequeue() is None


def test_byte_accounting():
    q = DropTailQueue(100_000)
    q.enqueue(pkt(1000))
    assert q.bytes_queued == 1000 + HEADER_BYTES
    q.dequeue()
    assert q.bytes_queued == 0


def test_drop_when_full():
    q = DropTailQueue(2_500)
    assert q.enqueue(pkt(1000))
    assert q.enqueue(pkt(1000))
    assert not q.enqueue(pkt(1000))  # 3 * 1078 > 2500
    assert q.dropped_pkts == 1
    assert q.dropped_bytes == 1000 + HEADER_BYTES


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        DropTailQueue(0)


def test_clear():
    q = DropTailQueue(100_000)
    for _ in range(5):
        q.enqueue(pkt())
    assert q.clear() == 5
    assert len(q) == 0
    assert q.bytes_queued == 0


def test_flow_tracking():
    q = DropTailQueue(100_000, track_flows=True)
    q.enqueue(pkt(1000, flow=1))
    q.enqueue(pkt(1000, flow=1))
    q.enqueue(pkt(500, flow=2))
    assert q.flow_bytes[1] == 2 * (1000 + HEADER_BYTES)
    assert q.flow_bytes[2] == 500 + HEADER_BYTES
    q.dequeue()
    assert q.flow_bytes[1] == 1000 + HEADER_BYTES
    q.dequeue()
    assert 1 not in q.flow_bytes  # fully drained flows are evicted
    q.clear()
    assert not q.flow_bytes


def test_counters_cumulative():
    q = DropTailQueue(100_000)
    for _ in range(3):
        q.enqueue(pkt())
    q.dequeue()
    assert q.enqueued_pkts == 3
    assert len(q) == 2
