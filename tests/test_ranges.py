"""Unit + property tests for the RangeSet (SACK scoreboard core)."""

from hypothesis import given, strategies as st

from repro.host.ranges import RangeSet


def test_empty():
    rs = RangeSet()
    assert not rs
    assert rs.total_bytes() == 0
    assert rs.max_end() == 0


def test_add_single():
    rs = RangeSet()
    rs.add(10, 20)
    assert list(rs) == [(10, 20)]
    assert rs.total_bytes() == 10


def test_add_ignores_empty_range():
    rs = RangeSet()
    rs.add(5, 5)
    rs.add(9, 3)
    assert not rs


def test_merge_adjacent():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(10, 20)
    assert list(rs) == [(0, 20)]


def test_merge_overlapping():
    rs = RangeSet()
    rs.add(0, 15)
    rs.add(10, 30)
    assert list(rs) == [(0, 30)]


def test_disjoint_stay_disjoint():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(20, 30)
    assert list(rs) == [(0, 10), (20, 30)]


def test_bridge_merge():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(20, 30)
    rs.add(5, 25)
    assert list(rs) == [(0, 30)]


def test_prune_below():
    rs = RangeSet([(0, 10), (20, 30)])
    rs.prune_below(25)
    assert list(rs) == [(25, 30)]
    rs.prune_below(100)
    assert not rs


def test_contains():
    rs = RangeSet([(10, 20)])
    assert rs.contains(10, 20)
    assert rs.contains(12, 15)
    assert not rs.contains(5, 15)
    assert not rs.contains(15, 25)


def test_covered_point():
    rs = RangeSet([(10, 20)])
    assert rs.covered_point(10)
    assert rs.covered_point(19)
    assert not rs.covered_point(20)
    assert not rs.covered_point(9)


def test_first_gap_simple():
    rs = RangeSet([(10, 20), (30, 40)])
    assert rs.first_gap(0, 50) == (0, 10)
    assert rs.first_gap(10, 50) == (20, 30)
    assert rs.first_gap(35, 50) == (40, 50)


def test_first_gap_fully_covered():
    rs = RangeSet([(0, 100)])
    assert rs.first_gap(0, 100) is None


def test_first_gap_empty_set():
    rs = RangeSet()
    assert rs.first_gap(5, 10) == (5, 10)


def test_as_tuples_limit():
    rs = RangeSet([(0, 1), (2, 3), (4, 5), (6, 7)])
    assert rs.as_tuples(2) == ((0, 1), (2, 3))


ranges_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 50)).map(lambda t: (t[0], t[0] + t[1])),
    max_size=30,
)


@given(ranges=ranges_strategy)
def test_invariants_sorted_disjoint(ranges):
    rs = RangeSet()
    for start, end in ranges:
        rs.add(start, end)
    items = list(rs)
    # sorted, non-empty, non-touching
    for (s1, e1), (s2, e2) in zip(items, items[1:]):
        assert e1 < s2
    for s, e in items:
        assert s < e


@given(ranges=ranges_strategy)
def test_total_bytes_matches_point_cover(ranges):
    rs = RangeSet()
    covered = set()
    for start, end in ranges:
        rs.add(start, end)
        covered.update(range(start, end))
    assert rs.total_bytes() == len(covered)


@given(ranges=ranges_strategy, cutoff=st.integers(0, 250))
def test_prune_matches_point_semantics(ranges, cutoff):
    rs = RangeSet()
    covered = set()
    for start, end in ranges:
        rs.add(start, end)
        covered.update(range(start, end))
    rs.prune_below(cutoff)
    expected = {p for p in covered if p >= cutoff}
    actual = set()
    for s, e in rs:
        actual.update(range(s, e))
    assert actual == expected


@given(ranges=ranges_strategy, floor=st.integers(0, 250))
def test_first_gap_is_truly_first_uncovered(ranges, floor):
    rs = RangeSet()
    covered = set()
    for start, end in ranges:
        rs.add(start, end)
        covered.update(range(start, end))
    limit = 300
    gap = rs.first_gap(floor, limit)
    uncovered = [p for p in range(floor, limit) if p not in covered]
    if gap is None:
        assert not uncovered
    else:
        assert gap[0] == uncovered[0]
        # every point of the gap is uncovered
        for p in range(gap[0], min(gap[1], limit)):
            assert p not in covered
