"""Unit tests for spanning-tree allocation and label routing."""

from repro.host.gro import OfficialGro
from repro.host.host import Host
from repro.net.addresses import shadow_mac
from repro.net.routing import (
    allocate_spanning_trees,
    enumerate_paths,
    install_tree_routes,
)
from repro.net.topology import build_clos, build_single_switch
from repro.sim.engine import Simulator


def build(n_spines=4, n_leaves=2, hosts_per_leaf=2):
    sim = Simulator()
    topo = build_clos(sim, n_spines, n_leaves)
    for i in range(n_leaves * hosts_per_leaf):
        host = Host(sim, i, gro=OfficialGro(), model_cpu=False)
        topo.attach_host(host, topo.leaves[i // hosts_per_leaf])
    return sim, topo


def test_one_tree_per_spine():
    _, topo = build(n_spines=4)
    trees = allocate_spanning_trees(topo)
    assert len(trees) == 4
    assert {t.spine.name for t in trees} == {"S1", "S2", "S3", "S4"}
    assert [t.tree_id for t in trees] == [0, 1, 2, 3]


def test_single_switch_degenerate_tree():
    sim = Simulator()
    topo = build_single_switch(sim)
    trees = allocate_spanning_trees(topo)
    assert len(trees) == 1


def test_install_tree_routes_complete():
    _, topo = build(n_spines=2, n_leaves=2, hosts_per_leaf=2)
    trees = allocate_spanning_trees(topo)
    install_tree_routes(topo, trees)
    for tree in trees:
        for host_id, leaf in topo.host_leaf.items():
            label = shadow_mac(tree.tree_id, host_id)
            # destination leaf delivers to the host port
            assert leaf.l2_table[label] is topo.host_port[host_id]
            # every spine can route the label down (failover support)
            for spine in topo.spines:
                assert label in spine.l2_table
            # other leaves route up to the tree's spine
            for other in topo.leaves:
                if other is leaf:
                    continue
                up = other.l2_table[label]
                assert up.peer is tree.spine


def test_label_path_uses_only_its_tree_spine():
    """End-to-end: a labelled packet crosses exactly its tree's spine."""
    sim, topo = build(n_spines=4, n_leaves=2, hosts_per_leaf=1)
    trees = allocate_spanning_trees(topo)
    install_tree_routes(topo, trees)
    from repro.net.packet import Packet

    for tree in trees:
        label = shadow_mac(tree.tree_id, 1)  # host 1 on leaf 2
        pkt = Packet(flow_id=1, src_host=0, dst_host=1, dst_mac=label,
                     kind="data", seq=0, payload_len=100, flowcell_id=1)
        before = {s.name: s.rx_pkts for s in topo.spines}
        topo.leaves[0].receive(pkt, None)
        sim.run()
        for spine in topo.spines:
            expected = 1 if spine is tree.spine else 0
            assert spine.rx_pkts - before[spine.name] == expected
        # and the host got it
        assert topo.hosts[1].nic.rx_pkts >= 1


def test_enumerate_paths():
    _, topo = build(n_spines=4, n_leaves=2, hosts_per_leaf=2)
    paths = enumerate_paths(topo, 0, 2)
    assert len(paths) == 4
    for path in paths:
        assert path[0] == "L1" and path[-1] == "L2"
    # same-leaf pair: single local path
    assert enumerate_paths(topo, 0, 1) == [["L1"]]
