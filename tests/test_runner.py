"""Tests for the parallel sweep runner (repro.runner).

Covers the ISSUE-mandated behaviors: parallel results byte-identical
to serial for a small scalability grid; the result store skipping
completed jobs on resume; injected worker crashes retried then
reported failed without killing the sweep; timeouts killing hung jobs;
plus serialization round-trips, spec hashing and the CLI.
"""

import json
import os
import time

import pytest

from repro.experiments.harness import TestbedConfig
from repro.experiments.scalability import run_scalability, scalability_specs
from repro.runner import (
    JobSpec,
    ResultStore,
    canonical_json,
    collect_results,
    from_jsonable,
    run_jobs,
    to_jsonable,
)
from repro.runner.cli import main as cli_main
from repro.units import msec

TINY = dict(warm_ns=msec(2), measure_ns=msec(3))


# --- picklable job functions (workers resolve these by module:name) ---------

def job_ok(value=0):
    return {"value": value, "pair": ("a", 1), "by_id": {7: 1.5}}


def job_marker(path, value=0):
    with open(path, "a") as fh:
        fh.write("x")
    return value


def job_raise():
    raise RuntimeError("injected failure")


def job_exit():
    os._exit(7)


def job_hang():
    time.sleep(60)


# --- serialization ----------------------------------------------------------

def test_serialize_roundtrip_structures():
    obj = {
        "cfg": TestbedConfig(scheme="ecmp", seed=3),
        "rates": {1: 2.5, 9: 0.125},
        "pairs": [(0, 2), (1, 3)],
        "mixed": (1, [2.0, "three"], None, True),
    }
    back = from_jsonable(json.loads(json.dumps(to_jsonable(obj))))
    assert back == obj
    assert isinstance(back["cfg"], TestbedConfig)
    assert list(back["rates"]) == [1, 9]  # int keys survive
    assert back["pairs"][0] == (0, 2) and isinstance(back["pairs"][0], tuple)


def test_serialize_rejects_unknown_types():
    with pytest.raises(TypeError):
        to_jsonable(object())


# --- job specs --------------------------------------------------------------

def test_jobspec_hash_stable_and_sensitive():
    spec = JobSpec.make(job_ok, cfg=TestbedConfig(seed=1), value=2)
    same = JobSpec.make(job_ok, cfg=TestbedConfig(seed=1), value=2,
                        label="display-only")
    other_kwargs = JobSpec.make(job_ok, cfg=TestbedConfig(seed=1), value=3)
    other_cfg = JobSpec.make(job_ok, cfg=TestbedConfig(seed=2), value=2)
    assert spec.hash == same.hash  # label excluded from the cache key
    assert spec.hash != other_kwargs.hash
    assert spec.hash != other_cfg.hash
    assert len(spec.hash) == 16


def test_jobspec_executes_resolved_function():
    spec = JobSpec.make(job_ok, value=41)
    assert spec.execute() == {"value": 41, "pair": ("a", 1), "by_id": {7: 1.5}}


# --- parallel == serial -----------------------------------------------------

def test_parallel_matches_serial_scalability():
    kw = dict(schemes=("presto", "ecmp"), path_counts=(2,), seeds=(1, 2), **TINY)
    serial = run_scalability(**kw, jobs=1)
    parallel = run_scalability(**kw, jobs=2)
    assert canonical_json(parallel) == canonical_json(serial)


# --- result store / resume --------------------------------------------------

def test_store_resume_skips_completed(tmp_path):
    marker = tmp_path / "runs"
    specs = [JobSpec.make(job_marker, path=str(marker), value=i) for i in range(3)]
    store = ResultStore(str(tmp_path / "results"))

    first = run_jobs(specs, jobs=1, store=store)
    assert [o.status for o in first] == ["ok"] * 3
    assert marker.read_text() == "xxx"
    assert len(store) == 3

    second = run_jobs(specs, jobs=1, store=store)
    assert [o.status for o in second] == ["cached"] * 3
    assert marker.read_text() == "xxx"  # nothing re-ran
    assert collect_results(second) == [0, 1, 2]

    forced = run_jobs(specs, jobs=1, store=store, force=True)
    assert [o.status for o in forced] == ["ok"] * 3
    assert marker.read_text() == "xxxxxx"


def test_store_resume_from_pool_run(tmp_path):
    specs = scalability_specs(("presto",), (2,), (1,), **TINY)
    store = ResultStore(str(tmp_path))
    fresh = run_jobs(specs, jobs=2, store=store)
    cached = run_jobs(specs, jobs=2, store=store)
    assert [o.status for o in fresh] == ["ok"]
    assert [o.status for o in cached] == ["cached"]
    assert canonical_json(fresh[0].result) == canonical_json(cached[0].result)


def test_store_records_are_atomic_json(tmp_path):
    store = ResultStore(str(tmp_path))
    spec = JobSpec.make(job_ok, value=5)
    store.save(spec, to_jsonable(spec.execute()), elapsed_s=0.1)
    (record,) = list(store.records())
    assert record["hash"] == spec.hash
    assert from_jsonable(record["result"])["value"] == 5
    assert not [f for f in os.listdir(store.store_dir) if f.endswith(".tmp")]


# --- failure containment ----------------------------------------------------

def test_worker_crash_retried_then_failed_without_killing_sweep():
    specs = [
        JobSpec.make(job_ok, value=1, label="ok-1"),
        JobSpec.make(job_exit, label="crasher"),
        JobSpec.make(job_ok, value=2, label="ok-2"),
    ]
    out = run_jobs(specs, jobs=2, retries=1)
    assert out[0].ok and out[2].ok
    assert out[1].status == "failed"
    assert out[1].attempts == 2  # initial try + one retry
    assert "died" in out[1].error
    with pytest.raises(RuntimeError, match="crasher"):
        collect_results(out)


def test_exception_retried_then_failed_serial():
    logs = []
    out = run_jobs(
        [JobSpec.make(job_raise, label="raiser"), JobSpec.make(job_ok, value=3)],
        jobs=1, retries=2, log=logs.append,
    )
    assert out[0].status == "failed"
    assert out[0].attempts == 3
    assert "injected failure" in out[0].error
    assert out[1].ok
    assert any("retrying" in line for line in logs)


def test_timeout_kills_hung_job():
    specs = [
        JobSpec.make(job_hang, label="hanger"),
        JobSpec.make(job_ok, value=4, label="quick"),
    ]
    t0 = time.monotonic()
    out = run_jobs(specs, jobs=2, retries=0, timeout_s=1.0)
    assert time.monotonic() - t0 < 30  # nowhere near job_hang's 60 s sleep
    assert out[0].status == "failed"
    assert "timed out" in out[0].error
    assert out[1].ok


def test_run_jobs_rejects_bad_jobs_count():
    with pytest.raises(ValueError):
        run_jobs([], jobs=0)


# --- CLI --------------------------------------------------------------------

def test_cli_help_and_list(capsys):
    with pytest.raises(SystemExit) as exc:
        cli_main(["--help"])
    assert exc.value.code == 0
    assert cli_main([]) == 0  # bare invocation prints help
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "scalability" in out and "oversub" in out and "synthetic" in out


def test_cli_run_then_resume(tmp_path, capsys):
    argv = [
        "run", "scalability",
        "--schemes", "presto", "--points", "2", "--seeds", "1",
        "--warm-ms", "2", "--measure-ms", "3",
        "--jobs", "2",
        "--results-dir", str(tmp_path),
    ]
    assert cli_main(argv) == 0
    first = capsys.readouterr()
    assert "ok scalability/presto/paths2/seed1" in first.err
    assert os.path.exists(tmp_path / "runner_scalability.txt")
    with open(tmp_path / "runner_scalability.json") as fh:
        payload = json.load(fh)
    grid = from_jsonable(payload["data"])
    assert grid["presto"][0].n_paths == 2

    assert cli_main(argv) == 0
    second = capsys.readouterr()
    assert "cached scalability/presto/paths2/seed1" in second.err

    assert cli_main(["summary", "--results-dir", str(tmp_path)]) == 0
    summary = capsys.readouterr().out
    assert "scalability/presto/paths2/seed1" in summary


def test_cli_rejects_unknown_sweep(capsys):
    assert cli_main(["run", "nope"]) == 2
    assert "unknown sweep" in capsys.readouterr().err


def test_cli_validates_grid_options(capsys):
    assert cli_main(["run", "scalability", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
    assert cli_main(["run", "scalability", "--points", "abc"]) == 2
    assert "integers" in capsys.readouterr().err
    assert cli_main(["run", "scalability", "--seeds", ""]) == 2
    assert "at least one seed" in capsys.readouterr().err
    assert cli_main(["run", "scalability", "--schemes", "zigzag"]) == 2
    assert "unknown scheme" in capsys.readouterr().err


# --- store corruption = cache miss ------------------------------------------

@pytest.mark.parametrize("garbage", [
    "",                                  # empty file
    '{"hash": "abc", "result',           # truncated mid-write
    "not json at all \x00",              # binary noise
    "[1, 2, 3]",                         # valid JSON, wrong shape
    '{"hash": "abc"}',                   # dict missing the result field
])
def test_corrupt_store_entry_is_cache_miss_and_reruns(tmp_path, garbage):
    marker = tmp_path / "runs"
    spec = JobSpec.make(job_marker, path=str(marker), value=9)
    store = ResultStore(str(tmp_path / "results"))
    run_jobs([spec], jobs=1, store=store)
    assert marker.read_text() == "x"

    (record_path,) = [
        os.path.join(store.store_dir, f)
        for f in os.listdir(store.store_dir) if f.endswith(".json")
    ]
    with open(record_path, "w") as fh:
        fh.write(garbage)

    out = run_jobs([spec], jobs=1, store=store)
    assert [o.status for o in out] == ["ok"]  # re-ran, not "cached"
    assert marker.read_text() == "xx"
    assert collect_results(out) == [9]
    # and the re-run repaired the record
    again = run_jobs([spec], jobs=1, store=store)
    assert [o.status for o in again] == ["cached"]


# --- store hygiene -----------------------------------------------------------

def _seed_store_with_debris(tmp_path):
    """A store holding 2 good records, 1 corrupt record, 1 orphan tmp."""
    store = ResultStore(str(tmp_path / "results"))
    specs = [JobSpec.make(job_ok, value=i, label=f"g{i}") for i in range(2)]
    run_jobs(specs, jobs=1, store=store)
    with open(os.path.join(store.store_dir, "deadbeef.json"), "w") as fh:
        fh.write('{"hash": "deadbeef"}')  # parses, lost its result
    with open(os.path.join(store.store_dir, "orphan.tmp"), "w") as fh:
        fh.write('{"half": "writ')  # writer died before os.replace
    return store


def test_store_len_is_file_count_and_records_skip_corrupt(tmp_path):
    store = _seed_store_with_debris(tmp_path)
    assert len(store) == 3  # counts .json files without parsing
    assert len(list(store.records())) == 2  # corrupt one filtered out
    assert len(ResultStore(str(tmp_path / "nowhere"))) == 0


def test_store_gc_removes_tmp_and_corrupt_keeps_good(tmp_path):
    store = _seed_store_with_debris(tmp_path)
    stats = store.gc()
    assert stats == {"tmp_removed": 1, "corrupt_removed": 1, "kept": 2}
    assert len(store) == 2
    names = os.listdir(store.store_dir)
    assert not [n for n in names if n.endswith(".tmp")]
    assert len(list(store.records())) == 2
    # idempotent on a clean store
    assert store.gc() == {"tmp_removed": 0, "corrupt_removed": 0, "kept": 2}
    assert ResultStore(str(tmp_path / "nowhere")).gc() == {
        "tmp_removed": 0, "corrupt_removed": 0, "kept": 0}


def test_cli_store_gc(tmp_path, capsys):
    store = _seed_store_with_debris(tmp_path)
    assert cli_main(["store", "gc", "--results-dir",
                     str(tmp_path / "results")]) == 0
    out = capsys.readouterr().out
    assert "1 orphaned tmp file(s)" in out
    assert "1 corrupt record(s)" in out
    assert "2 record(s) kept" in out
    assert len(store) == 2


# --- retries knob on the CLI -------------------------------------------------

def test_cli_rejects_negative_retries(capsys):
    assert cli_main(["run", "scalability", "--retries", "-1"]) == 2
    assert "--retries" in capsys.readouterr().err


def test_run_jobs_retries_zero_fails_fast():
    out = run_jobs([JobSpec.make(job_raise, label="raiser")],
                   jobs=1, retries=0)
    assert out[0].status == "failed"
    assert out[0].attempts == 1  # no budget: a single attempt


# --- jobs/timeout validation ------------------------------------------------

@pytest.mark.parametrize("timeout_s", [0, -1, -0.5])
def test_run_jobs_rejects_nonpositive_timeout(timeout_s):
    with pytest.raises(ValueError, match="timeout"):
        run_jobs([JobSpec.make(job_ok)], jobs=1, timeout_s=timeout_s)


def test_cli_rejects_nonpositive_timeout(capsys):
    assert cli_main(["run", "scalability", "--timeout", "0"]) == 2
    assert "--timeout" in capsys.readouterr().err
    assert cli_main(["run", "scalability", "--timeout", "-3"]) == 2
    assert "--timeout" in capsys.readouterr().err
