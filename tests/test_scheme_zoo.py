"""The scheme zoo and its tournament: property tests for the three
literature schemes (DiffFlow / RepFlow / elephant isolation), the
tournament driver's ranking + ordering machinery, and tier-2
cross-fidelity parity.

Property tests (hypothesis) pin the zoo's contract corners:

* DiffFlow's threshold boundary — classification is cumulative and
  latched, and a flow of *exactly* the cutoff lives and dies a mouse;
* RepFlow's byte ledger — the application delivers exactly the flow
  size despite two copies on the wire, with the loser's payload
  accounted as suppressed duplicates, never as delivered bytes;
* elephant isolation's label split — a clean partition of the distinct
  schedule labels, which on a fat tree (k=4) puts mice and detected
  elephants on fabric-link-disjoint spanning trees.
"""

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.harness import Testbed, TestbedConfig
from repro.host.transfer import delivered_for
from repro.lb.diffflow import DIFFFLOW_THRESHOLD, DiffFlowLb
from repro.lb.elephant_iso import ElephantIsoLb, split_labels
from repro.lb.repflow import RepFlowLb
from repro.net.addresses import shadow_mac_tree
from repro.net.packet import Packet, Segment
from repro.units import KB, msec

LABELS = [1001, 1002, 1003, 1004]


def seg(flow=1, seq=0, end=10 * KB, dst=3):
    return Segment(flow_id=flow, src_host=0, dst_host=dst,
                   seq=seq, end_seq=end)


def make_lb(cls, seed=1, **kwargs):
    lb = cls(0, random.Random(seed), **kwargs)
    lb.set_schedule(3, LABELS)
    return lb


# --- DiffFlow: the threshold boundary ----------------------------------------


@st.composite
def chunked_exact_threshold(draw):
    """Segment lengths that sum to exactly DIFFFLOW_THRESHOLD."""
    cuts = draw(st.lists(
        st.integers(min_value=1, max_value=DIFFFLOW_THRESHOLD - 1),
        max_size=6, unique=True))
    bounds = [0] + sorted(cuts) + [DIFFFLOW_THRESHOLD]
    return [b - a for a, b in zip(bounds, bounds[1:])]


class TestDiffFlowBoundary:
    @settings(max_examples=50, deadline=None)
    @given(chunks=chunked_exact_threshold(), seed=st.integers(0, 2**16))
    def test_flow_of_exactly_threshold_bytes_stays_a_mouse(self, chunks,
                                                           seed):
        lb = make_lb(DiffFlowLb, seed=seed)
        offset = 0
        for length in chunks:
            s = seg(seq=offset, end=offset + length)
            lb.select(s)
            offset += length
            assert not lb.is_elephant(1)
        assert offset == DIFFFLOW_THRESHOLD

    @settings(max_examples=50, deadline=None)
    @given(extra=st.integers(min_value=1, max_value=10 * KB),
           seed=st.integers(0, 2**16))
    def test_crossing_threshold_promotes_once_and_latches(self, extra, seed):
        lb = make_lb(DiffFlowLb, seed=seed)
        s = seg(end=DIFFFLOW_THRESHOLD + extra)
        lb.select(s)
        assert lb.is_elephant(1)
        pinned = s.dst_mac
        assert pinned in LABELS
        # latched: later segments — including retransmits *below* the
        # threshold — keep the same classification and the same path
        for seq in (0, DIFFFLOW_THRESHOLD - 1, DIFFFLOW_THRESHOLD + extra):
            s2 = seg(seq=seq, end=seq + 1)
            lb.select(s2)
            assert lb.is_elephant(1)
            assert s2.dst_mac == pinned

    def test_mice_spray_per_packet_elephants_keep_their_pin(self):
        lb = make_lb(DiffFlowLb)
        label = lb.packet_labeler()
        # mouse: consecutive packets rotate across the schedule
        macs = []
        for i in range(8):
            p = Packet(flow_id=1, src_host=0, dst_host=3, dst_mac=0,
                       kind="data", seq=i * 1448, payload_len=1448,
                       flowcell_id=0)
            label(p)
            macs.append(p.dst_mac)
        assert set(macs) == set(LABELS)
        assert all(a != b for a, b in zip(macs, macs[1:]))
        # elephant: the labeler must not touch the pinned segment label
        s = seg(flow=2, end=DIFFFLOW_THRESHOLD + 1)
        lb.select(s)
        p = Packet(flow_id=2, src_host=0, dst_host=3, dst_mac=s.dst_mac,
                   kind="data", seq=0, payload_len=1448, flowcell_id=1)
        label(p)
        assert p.dst_mac == s.dst_mac

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError):
            DiffFlowLb(0, random.Random(1), threshold=0)


# --- RepFlow: disjoint copies and the byte ledger ----------------------------


class TestRepFlowPaths:
    @settings(max_examples=50, deadline=None)
    @given(n_labels=st.integers(min_value=2, max_value=8),
           seed=st.integers(0, 2**16))
    def test_replica_rides_a_different_tree(self, n_labels, seed):
        lb = RepFlowLb(0, random.Random(seed))
        lb.set_schedule(3, list(range(2001, 2001 + n_labels)))
        lb.pair(10, 11)
        primary, replica = seg(flow=10), seg(flow=11)
        lb.select(primary)
        lb.select(replica)
        assert primary.dst_mac != replica.dst_mac
        # sticky: both copies keep their pick for every later segment
        again = seg(flow=11, seq=1448, end=2 * 1448)
        lb.select(again)
        assert again.dst_mac == replica.dst_mac


@settings(max_examples=6, deadline=None)
@given(size=st.integers(min_value=1, max_value=100 * KB))
def test_repflow_byte_conservation_despite_duplication(size):
    """Received payload == flow size: the winner's bytes are the
    delivery, the loser's are suppressed duplicates — a distinct
    ledger entry, never double-counted."""
    tb = Testbed(TestbedConfig(scheme="repflow", n_spines=2, n_leaves=2,
                               hosts_per_leaf=2, seed=1))
    app = tb.add_elephant(0, 2, size_bytes=size)
    tb.run(msec(20))
    assert app.winner is not None, "copy never completed"
    assert app.delivered_bytes() == size
    by_flow = app.delivered_by_flow()
    leader = app.winner.flow_id
    (loser,) = [f for f in app.flow_ids() if f != leader]
    assert by_flow[leader] == size
    assert by_flow[loser] == 0
    # the suppressed duplicate is exactly what the receiver actually
    # saw of the losing copy, and the ledger splits without overlap
    loser_rx = delivered_for(tb.hosts[2], loser)
    assert app.dup_suppressed_bytes == loser_rx
    total_rx = sum(delivered_for(tb.hosts[2], f) for f in app.flow_ids())
    assert app.delivered_bytes() + app.dup_suppressed_bytes == total_rx


def test_repflow_replicates_only_mice():
    tb = Testbed(TestbedConfig(scheme="repflow", n_spines=2, n_leaves=2,
                               hosts_per_leaf=2, seed=1))
    from repro.host.app import BulkApp, RepFlowApp

    assert isinstance(tb.add_elephant(0, 2, size_bytes=50 * KB), RepFlowApp)
    assert isinstance(tb.add_elephant(1, 3, size_bytes=2_000_000), BulkApp)
    # unbounded transfers cannot race to completion
    assert isinstance(tb.add_elephant(0, 3), BulkApp)


# --- elephant isolation: the label partition ---------------------------------


class TestSplitLabels:
    @settings(max_examples=100, deadline=None)
    @given(labels=st.lists(st.integers(0, 9), min_size=1, max_size=12))
    def test_partitions_distinct_labels(self, labels):
        shared, dedicated = split_labels(labels)
        distinct = list(dict.fromkeys(labels))
        if len(distinct) < 2:
            # degraded fabric: everything shares the one tree
            assert shared == distinct and dedicated == distinct
        else:
            assert shared + dedicated == distinct
            assert not set(shared) & set(dedicated)
            assert shared and dedicated


def test_elephant_iso_disjoint_trees_on_fat_tree_k4():
    """On the k=4 fat tree the positional split lands mice on uplink
    class 0 and elephants on class 1 — no shared fabric link anywhere
    (only the host access legs, which every tree must traverse)."""
    from repro.net.routing import tree_legs

    tb = Testbed(TestbedConfig(scheme="elephant_iso", topology="fat-tree:k=4",
                               seed=1))
    topo, trees = tb.topo, tb.controller.trees
    links = {}
    for tree in trees:
        used = set()
        for src_leaf in topo.leaves:
            for dst_leaf in topo.leaves:
                if src_leaf is not dst_leaf:
                    for port in tree_legs(topo, tree, src_leaf, dst_leaf):
                        used.add(port.link.name)
        links[tree.tree_id] = used
    for src in (0, 5, 15):
        lb = tb.hosts[src].lb
        for dst in range(len(tb.hosts)):
            if dst == src or topo.host_leaf[dst] is topo.host_leaf[src]:
                continue  # same-leaf pairs route on real MACs, not trees
            shared, dedicated = split_labels(lb.labels_for(dst))
            mice_links = set().union(
                *(links[shadow_mac_tree(m)] for m in shared))
            elephant_links = set().union(
                *(links[shadow_mac_tree(m)] for m in dedicated))
            assert not mice_links & elephant_links, (src, dst)


def test_elephant_iso_moves_detected_elephants_off_shared_trees():
    lb = make_lb(ElephantIsoLb)
    shared, dedicated = split_labels(LABELS)
    offset, macs_before = 0, set()
    while offset <= lb.threshold:
        s = seg(seq=offset, end=offset + 64 * KB)
        lb.select(s)
        if not lb.is_elephant(1):
            macs_before.add(s.dst_mac)
        offset += 64 * KB
    assert lb.is_elephant(1)
    assert macs_before <= set(shared)
    s = seg(seq=offset, end=offset + 64 * KB)
    lb.select(s)
    assert s.dst_mac in dedicated


def test_elephant_iso_flowcells_stay_monotone_across_promotion():
    """One tagger spans the mouse->elephant transition, so the
    segment-level flowcell sequence never decreases or skips (the
    ValidationProbe invariant)."""
    lb = make_lb(ElephantIsoLb)
    cells, offset = [], 0
    for _ in range(40):
        s = seg(seq=offset, end=offset + 48 * KB)
        lb.select(s)
        cells.append(s.flowcell_id)
        offset += 48 * KB
    assert lb.is_elephant(1)
    assert all(0 <= b - a <= 1 for a, b in zip(cells, cells[1:]))


# --- the tournament driver ---------------------------------------------------


def _cell(topology, workload, scheme, mean):
    from repro.experiments.tournament import TournamentCell

    return TournamentCell(
        topology=topology, workload=workload, scheme=scheme, seeds=(1,),
        flows_started=10, flows_completed=10, mean_fct_ns=mean,
        p50_fct_ns=mean, p99_fct_ns=mean, mean_elephant_fct_ns=None)


class TestTournamentRanking:
    def test_borda_ranking_orders_by_mean_place(self):
        from repro.experiments.tournament import rank_standings

        cells = [
            _cell("clos", "websearch", "presto", 100.0),
            _cell("clos", "websearch", "ecmp", 200.0),
            _cell("clos", "datamining", "presto", 300.0),
            _cell("clos", "datamining", "ecmp", 150.0),
            _cell("fat", "websearch", "presto", 90.0),
            _cell("fat", "websearch", "ecmp", 95.0),
        ]
        standings = rank_standings(cells, ("ecmp", "presto"))
        assert [s.scheme for s in standings] == ["presto", "ecmp"]
        assert standings[0].rank == 1 and standings[0].wins == 2
        assert standings[0].mean_rank == round(4 / 3, 4)

    def test_no_result_cells_place_last_and_ties_break_by_name(self):
        from repro.experiments.tournament import rank_standings

        cells = [
            _cell("clos", "websearch", "b", None),
            _cell("clos", "websearch", "a", None),
            _cell("clos", "websearch", "c", 50.0),
        ]
        standings = rank_standings(cells, ("a", "b", "c"))
        assert [s.scheme for s in standings] == ["c", "a", "b"]

    def test_ordering_checks_gate_trace_cells_only(self):
        from repro.experiments.tournament import ordering_checks

        cells = [
            _cell("clos:spines=4,leaves=4,hosts=4", "websearch",
                  "presto", 100.0),
            _cell("clos:spines=4,leaves=4,hosts=4", "websearch",
                  "ecmp", 120.0),
            _cell("clos:spines=4,leaves=4,hosts=4", "incast",
                  "presto", 500.0),
            _cell("clos:spines=4,leaves=4,hosts=4", "incast",
                  "ecmp", 100.0),
        ]
        checks = ordering_checks(cells)
        assert len(checks) == 1  # incast is never gated
        assert checks[0].ok and checks[0].ratio == pytest.approx(0.8333)

    def test_ordering_check_fails_when_presto_slower(self):
        from repro.experiments.tournament import ordering_checks

        cells = [
            _cell("fat-tree:k=4", "datamining", "presto", 200.0),
            _cell("fat-tree:k=4", "datamining", "ecmp", 100.0),
        ]
        (check,) = ordering_checks(cells)
        assert not check.ok and check.ratio == pytest.approx(2.0)

    def test_specs_reject_unknown_inputs(self):
        from repro.experiments.tournament import tournament_specs

        with pytest.raises(ValueError, match="unknown scheme"):
            tournament_specs(schemes=("nope",))
        with pytest.raises(ValueError, match="unknown workload"):
            tournament_specs(schemes=("ecmp",), workloads=("nope",))
        with pytest.raises(ValueError):
            tournament_specs(schemes=("ecmp",), topologies=("nope:k=4",))

    def test_registered_as_runner_sweep(self):
        from repro.runner.sweeps import SWEEPS

        assert "tournament" in SWEEPS
        assert SWEEPS["tournament"].accepts_topology


def test_tiny_tournament_is_deterministic(tmp_path):
    """The same grid twice — without a shared store — byte-identical
    JSON and a full set of standings/checks."""
    from repro.experiments.tournament import (
        render_markdown,
        run_tournament,
        tournament_json,
    )

    kwargs = dict(
        schemes=("ecmp", "presto"),
        topologies=("clos:spines=2,leaves=2,hosts=2",),
        workloads=("websearch",),
        seeds=(1,),
        duration_ns=msec(2),
    )
    first = run_tournament(**kwargs)
    second = run_tournament(**kwargs)
    assert tournament_json(first) == tournament_json(second)
    assert [s.scheme for s in first.standings] == ["presto", "ecmp"] or \
           [s.scheme for s in first.standings] == ["ecmp", "presto"]
    assert len(first.cells) == 2
    assert len(first.checks) == 1
    report = render_markdown(first)
    assert "## Standings" in report and "## Ordering checks" in report


def test_zoo_golden_fixtures_pin_tournament_cells():
    """Zoo goldens serialize FabricCellResult (a tournament cell);
    the legacy eight keep their scalability RunResult layout — the
    dispatch that guarantees their bytes never moved."""
    from repro.experiments.goldens import ZOO_SCHEMES
    from repro.experiments.schemes import scheme_names

    golden_dir = Path(__file__).parent / "golden"
    for scheme in scheme_names():
        payload = json.loads((golden_dir / f"{scheme}.json").read_text())
        kind = payload["__dataclass__"]
        if scheme in ZOO_SCHEMES:
            assert kind.endswith("FabricCellResult"), scheme
        else:
            assert kind.endswith("RunResult"), scheme


# --- tier 2: cross-fidelity parity + the ordering oracle ---------------------

#: flow fidelity omits slow-start and queueing delay, so it is
#: absolutely faster; the band documents how far the engines may sit
#: apart on the clos seed cell (observed 4-8x across the zoo) while
#: still agreeing on workload shape (identical arrivals)
CROSS_FIDELITY_MAX_RATIO = 10.0


@pytest.mark.tier2
@pytest.mark.parametrize("scheme", ["diffflow", "repflow", "elephant_iso"])
def test_cross_fidelity_fct_parity(scheme):
    from repro.experiments.fabric_sweep import fabric_config, run_fabric_cell

    cells = {}
    for fidelity in ("packet", "flow"):
        cells[fidelity] = run_fabric_cell(
            fabric_config("clos:spines=4,leaves=4,hosts=4", scheme, 1,
                          fidelity),
            workload="websearch", duration_ns=msec(5), load_scale=2.0,
            drain_ns=msec(5))
    packet, flow = cells["packet"], cells["flow"]
    # the offered workload is engine-independent
    assert packet.flows_started == flow.flows_started
    assert packet.fct_summary["count"] and flow.fct_summary["count"]
    ratio = packet.fct_summary["mean"] / flow.fct_summary["mean"]
    assert 1.0 <= ratio <= CROSS_FIDELITY_MAX_RATIO, ratio


@pytest.mark.tier2
def test_tournament_ordering_oracle_passes():
    from repro.validate.oracles import run_oracles

    reports = run_oracles(["tournament_ordering"], seeds=(1, 2, 3))
    assert len(reports) == 1
    assert reports[0].passed, reports[0].failures()


@pytest.mark.tier2
def test_tournament_ordering_oracle_rejects_flow_fidelity():
    from repro.validate.oracles import run_oracles

    with pytest.raises(ValueError, match="packet-only"):
        run_oracles(["tournament_ordering"], seeds=(1,), fidelity="flow")
