"""repro.search: property tests for the primitives, determinism pins
for the driver.

Three layers, matching the package:

* hypothesis properties — successive-halving rung arithmetic (budgets
  sum to the total, survivors monotone non-increasing, no (candidate,
  seed) pair evaluated twice), GA operators staying inside the
  ``ParamSpace``, encode/decode round-trips for every range kind;
* driver determinism — same GA seed => byte-identical ``SEARCH.json``
  (cold and warm store, serial and parallel), and a warm second run
  performing **zero** new evaluations (live ``RunStats``);
* CLI — run/--check wiring on the smoke preset.

Everything here uses the flow-fidelity smoke-sized settings so the
whole module stays tier-1 fast.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.runner import ResultStore
from repro.search.driver import (
    PRESETS,
    SearchSettings,
    run_search,
    search_json,
)
from repro.search.ga import (
    crossover,
    mutate,
    next_generation,
    sample_population,
)
from repro.search.halving import (
    halving_schedule,
    total_new_evals,
    total_submitted,
)
from repro.search.space import Param, ParamSpace
from repro.units import KB

# --- halving properties ------------------------------------------------------

halving_args = st.tuples(
    st.integers(min_value=1, max_value=60),   # n_candidates
    st.integers(min_value=1, max_value=16),   # n_seeds
    st.integers(min_value=2, max_value=4),    # eta
    st.integers(min_value=1, max_value=4),    # base_seeds
)


@given(halving_args)
@hsettings(max_examples=200, deadline=None)
def test_halving_schedule_invariants(args):
    n, seeds, eta, base = args
    rungs = halving_schedule(n, seeds, eta, base)
    # first rung evaluates everybody; last rung reaches the full seed set
    assert rungs[0].survivors == n
    assert rungs[-1].cum_seeds == seeds
    # survivors monotone non-increasing, cum seeds strictly increasing
    for prev, cur in zip(rungs, rungs[1:]):
        assert cur.survivors <= prev.survivors
        assert cur.cum_seeds > prev.cum_seeds
        assert cur.survivors >= 1
    # per-rung new seeds partition each survivor's cumulative budget
    for prev_cum, rung in zip([0] + [r.cum_seeds for r in rungs], rungs):
        assert rung.new_seeds == rung.cum_seeds - prev_cum
        assert rung.submitted == rung.survivors * rung.cum_seeds
        assert rung.new_evals == rung.survivors * rung.new_seeds


@given(halving_args)
@hsettings(max_examples=200, deadline=None)
def test_halving_budget_accounting(args):
    """Simulate the ladder candidate-by-candidate: the rung budget sums
    match an explicit (candidate, seed) ledger and no pair repeats."""
    n, seeds, eta, base = args
    rungs = halving_schedule(n, seeds, eta, base)
    evaluated = set()
    submitted = 0
    alive = list(range(n))
    for rung in rungs:
        alive = alive[:rung.survivors]
        for cand in alive:
            for seed in range(rung.cum_seeds):
                submitted += 1
                # a (candidate, seed) pair is *executed* at most once —
                # resubmissions on later rungs are store hits
                evaluated.add((cand, seed))
    assert submitted == total_submitted(rungs)
    assert len(evaluated) == total_new_evals(rungs)


def test_halving_schedule_rejects_nonsense():
    with pytest.raises(ValueError):
        halving_schedule(0, 3)
    with pytest.raises(ValueError):
        halving_schedule(4, 0)
    with pytest.raises(ValueError):
        halving_schedule(4, 3, eta=1)
    with pytest.raises(ValueError):
        halving_schedule(4, 3, base_seeds=0)


def test_halving_schedule_known_ladder():
    rungs = halving_schedule(12, 3, eta=2, base_seeds=1)
    assert [(r.survivors, r.cum_seeds) for r in rungs] == [
        (12, 1), (6, 2), (3, 3)]
    assert total_new_evals(rungs) == 12 + 6 + 3
    assert total_submitted(rungs) == 12 + 12 + 9


# --- ParamSpace properties ---------------------------------------------------


def _space() -> ParamSpace:
    return ParamSpace((
        Param("flowcell_bytes", "log", lo=16 * KB, hi=512 * KB,
              steps=6, integer=True),
        Param("gro_alpha", "log", lo=0.5, hi=8.0, steps=5),
        Param("gro_ewma_gain", "linear", lo=0.125, hi=1.0, steps=8),
        Param("presto_mode", "choice", choices=("rr", "random")),
    ))


@given(st.integers(min_value=0, max_value=2**31 - 1))
@hsettings(max_examples=100, deadline=None)
def test_space_encode_decode_round_trip(seed):
    """decode -> encode is the identity for every range kind."""
    space = _space()
    rng = random.Random(seed)
    genome = space.sample(rng)
    values = space.decode(genome)
    assert space.encode(values) == genome
    for param in space.params:
        assert param.name in values


def test_space_lattices_are_exact():
    space = _space()
    lattices = space.lattices()
    assert lattices[0] == tuple((16 * KB) * 2**i for i in range(6))
    assert lattices[1] == (0.5, 1.0, 2.0, 4.0, 8.0)
    assert len(lattices[2]) == 8
    assert space.size() == 6 * 5 * 8 * 2


def test_space_apply_and_validate():
    from repro.experiments.harness import TestbedConfig

    space = _space()
    base = TestbedConfig(scheme="presto", seed=1)
    space.validate(base)  # all lattice extremes pass harness validation
    cfg = space.apply(base, (2, 1, 0, 0))
    assert cfg.flowcell_bytes == 64 * KB
    assert cfg.gro_alpha == 1.0
    assert cfg.gro_ewma_gain == 0.125
    assert cfg.presto_mode == "rr"
    # an invalid range is caught by the harness's own ValueError
    bad = ParamSpace((
        Param("gro_ewma_gain", "linear", lo=0.5, hi=2.0, steps=3),))
    with pytest.raises(ValueError, match="gro_ewma_gain"):
        bad.validate(base)


def test_space_rejects_bad_params():
    with pytest.raises(ValueError, match="not TestbedConfig fields"):
        ParamSpace((Param("no_such_knob", "choice", choices=(1,)),))
    with pytest.raises(ValueError, match="duplicate param names"):
        ParamSpace((Param("seed", "choice", choices=(1,)),
                    Param("seed", "choice", choices=(2,))))
    with pytest.raises(ValueError, match="kind"):
        Param("seed", "uniform", lo=0, hi=1, steps=2)
    with pytest.raises(ValueError, match="lo < hi"):
        Param("seed", "linear", lo=5, hi=1, steps=3)
    with pytest.raises(ValueError, match="collapsed"):
        Param("seed", "linear", lo=1, hi=2, steps=9, integer=True).values()


# --- GA properties -----------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=20))
@hsettings(max_examples=100, deadline=None)
def test_ga_population_distinct_and_in_bounds(seed, n):
    space = _space()
    rng = random.Random(seed)
    population = sample_population(space, n, rng)
    assert len(population) == min(n, space.size())
    assert len(set(population)) == len(population)
    for genome in population:
        assert space.contains(genome)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@hsettings(max_examples=100, deadline=None)
def test_ga_crossover_and_mutation_stay_in_bounds(seed):
    space = _space()
    rng = random.Random(seed)
    a, b = space.sample(rng), space.sample(rng)
    child = crossover(a, b, rng)
    assert space.contains(child)
    # uniform crossover: every gene comes from a parent
    for gene, ga, gb in zip(child, a, b):
        assert gene in (ga, gb)
    mutant = mutate(space, child, rng)
    assert space.contains(mutant)
    # exactly one gene changed, to a different lattice index
    diffs = [i for i, (x, y) in enumerate(zip(child, mutant)) if x != y]
    assert len(diffs) == 1


@given(st.integers(min_value=0, max_value=2**31 - 1))
@hsettings(max_examples=50, deadline=None)
def test_ga_next_generation_novel_and_in_bounds(seed):
    space = _space()
    rng = random.Random(seed)
    parents = sample_population(space, 6, rng)
    children = next_generation(space, parents, 6, rng, seen=parents)
    assert len(children) == 6
    assert len(set(children)) == 6
    for child in children:
        assert space.contains(child)
        assert child not in parents


def test_ga_exhausts_small_space_gracefully():
    space = ParamSpace((
        Param("presto_mode", "choice", choices=("rr", "random")),
        Param("gro_adaptive", "choice", choices=(True, False)),
    ))
    rng = random.Random(7)
    population = sample_population(space, 10, rng)
    assert len(population) == space.size() == 4
    # nothing novel left: breeding returns an empty generation, not a hang
    assert next_generation(space, population, 3, rng,
                           seen=population) == []


# --- driver determinism ------------------------------------------------------


def _smoke_settings() -> SearchSettings:
    return PRESETS["smoke"]


def test_search_same_seed_byte_identical(tmp_path):
    settings = _smoke_settings()
    a, _ = run_search(settings, store=ResultStore(tmp_path / "a"))
    b, _ = run_search(settings, store=ResultStore(tmp_path / "b"))
    assert search_json(a) == search_json(b)


def test_search_warm_store_zero_new_evaluations(tmp_path):
    settings = _smoke_settings()
    store = ResultStore(tmp_path / "store")
    cold, cold_stats = run_search(settings, store=store)
    warm, warm_stats = run_search(settings, store=store)
    # the committed bytes are identical cold vs warm...
    assert search_json(cold) == search_json(warm)
    # ...while the live stats show the store did all the work
    assert cold_stats.executed > 0
    assert warm_stats.executed == 0
    assert warm_stats.cached == warm_stats.submitted
    assert warm_stats.submitted == cold_stats.submitted


def test_search_serial_vs_parallel_identical(tmp_path):
    settings = _smoke_settings()
    serial, _ = run_search(settings, jobs=1,
                           store=ResultStore(tmp_path / "serial"))
    parallel, _ = run_search(settings, jobs=2,
                             store=ResultStore(tmp_path / "parallel"))
    assert search_json(serial) == search_json(parallel)


def test_search_different_ga_seed_diverges(tmp_path):
    from dataclasses import replace

    settings = _smoke_settings()
    store = ResultStore(tmp_path / "store")
    a, _ = run_search(settings, store=store)
    b, _ = run_search(replace(settings, ga_seed=99), store=store)
    assert json.loads(search_json(a))["fields"]["ga_seed"] != \
        json.loads(search_json(b))["fields"]["ga_seed"]


def test_search_result_shape(tmp_path):
    settings = _smoke_settings()
    result, stats = run_search(settings, store=ResultStore(tmp_path / "s"))
    # one generation, all novel: every proposed candidate evaluated once
    assert result.evaluated == settings.population
    assert result.store["submitted"] == stats.submitted
    # against a cold store, structural new == live executed
    assert result.store["new_evals"] == stats.executed
    # frontier carries full-seed fitness, best first
    fits = [r.fitness_ns for r in result.frontier]
    assert all(r.n_seeds == len(settings.eval_seeds)
               for r in result.frontier)
    present = [f for f in fits if f is not None]
    assert present == sorted(present)
    # the structural hit rate matches the halving ladder's arithmetic
    rungs = halving_schedule(settings.population,
                             len(settings.eval_seeds),
                             settings.eta, settings.base_seeds)
    assert result.store["submitted"] == total_submitted(rungs)
    assert result.store["new_evals"] == total_new_evals(rungs)


# --- CLI ---------------------------------------------------------------------


def test_cli_run_and_check(tmp_path, capsys):
    from repro.search.cli import main

    out = tmp_path / "SEARCH.json"
    md = tmp_path / "SEARCH.md"
    args = ["run", "--preset", "smoke", "--quiet",
            "--results-dir", str(tmp_path / "store"),
            "--out", str(out), "--markdown", str(md)]
    assert main(args) == 0
    payload = out.read_text()
    assert payload.endswith("\n")
    assert json.loads(payload)["fields"]["preset"] == "smoke"
    assert "# Parameter search" in md.read_text()
    # --check against the file just written: byte-identical, exit 0
    assert main(args + ["--check"]) == 0
    # drift the committed file: --check must fail
    out.write_text(payload.replace('"smoke"', '"broke"', 1))
    assert main(args + ["--check"]) == 1


def test_cli_list(capsys):
    from repro.search.cli import main

    assert main(["list"]) == 0
    captured = capsys.readouterr()
    for preset in PRESETS:
        assert preset in captured.out


def test_runner_sweep_registration(tmp_path):
    from repro.runner.sweeps import SWEEPS

    assert "search" in SWEEPS
    report = SWEEPS["search"].run(
        ["smoke"], (), (), 0, 0,
        jobs=1, store=ResultStore(tmp_path / "store"), force=False,
        timeout_s=None, retries=1)
    assert report.name == "search"
    assert report.rows
    assert report.headers[0] == "rank"


def test_runner_cli_search_validates_presets(tmp_path, capsys):
    # `runner run search` repurposes --schemes as the preset name; the
    # CLI must validate it against the preset vocabulary, not the
    # scheme registry (a regression here rejected every preset name).
    from repro.runner.cli import main

    rc = main(["run", "search", "--schemes", "nonsense",
               "--results-dir", str(tmp_path / "store")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "preset" in err and "smoke" in err

    rc = main(["run", "search", "--schemes", "smoke", "--jobs", "1",
               "--quiet", "--results-dir", str(tmp_path / "store")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rank" in out and "flowcell_bytes" in out
