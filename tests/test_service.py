"""Tests for the sweep service (repro.service).

Covers the ISSUE-mandated behaviors: a coordinator + two workers
producing store records whose ``result`` (and spec/hash/label) fields
are byte-identical to a local ``run_jobs`` run; a SIGKILLed worker's
in-flight job requeued via lease expiry and finished elsewhere with
its retry budget uncharged; 429 backpressure on a full queue; stale
completions rejected; the ``/api/progress`` and dashboard endpoints;
and the shared :class:`LeaseQueue` budget rules both executors ride.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.runner import JobSpec, ResultStore, run_jobs, to_jsonable
from repro.runner.lease import LeaseQueue
from repro.service.cli import collect_sweep_specs
from repro.service.cli import main as service_main
from repro.service.coordinator import SweepCoordinator, serve
from repro.service.protocol import Backpressure, request_json
from repro.service.worker import run_worker

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# --- picklable job functions (workers resolve these by module:name) ---------

def job_ok(value=0):
    return {"value": value, "pair": ("a", 1), "by_id": {7: 1.5}}


def job_raise():
    raise RuntimeError("injected failure")


def job_nap(duration=0.0):
    time.sleep(duration)
    return "rested"


def job_hang_once(marker):
    """Hang on the first execution, return instantly on the next.

    The first attempt leaves a marker file and sleeps forever (its
    worker gets SIGKILLed); the retry sees the marker and succeeds.
    """
    if os.path.exists(marker):
        return 42
    with open(marker, "w") as fh:
        fh.write("started")
    time.sleep(120)


# --- harness ----------------------------------------------------------------

@pytest.fixture
def coordinator_factory():
    """Start in-process coordinators/workers; tear all of them down."""
    servers, stops, threads = [], [], []

    def start(store=None, **kwargs):
        coordinator, server = serve(store, port=0, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
        return coordinator, f"http://127.0.0.1:{server.server_port}"

    def start_workers(url, n, **kwargs):
        stop = threading.Event()
        stops.append(stop)
        kwargs.setdefault("poll_s", 0.02)
        kwargs.setdefault("max_idle_s", None)
        for i in range(n):
            thread = threading.Thread(
                target=run_worker, args=(url,),
                kwargs=dict(name=f"w{i}", stop=stop, **kwargs),
                daemon=True)
            thread.start()
            threads.append(thread)
        return stop

    yield start, start_workers

    for stop in stops:
        stop.set()
    for server in servers:
        server.shutdown()
        server.server_close()
    for thread in threads:
        thread.join(timeout=5)


def _record_essence(record):
    """The location-independent part of a store record, canonicalized."""
    return json.dumps(
        {k: record[k] for k in ("hash", "label", "spec", "result")},
        sort_keys=True)


# --- end to end: service results byte-identical to local ---------------------

def test_service_sweep_matches_local_run(tmp_path, coordinator_factory):
    start, start_workers = coordinator_factory
    specs = [JobSpec.make(job_ok, label=f"j{i}", value=i) for i in range(6)]

    svc_store = ResultStore(str(tmp_path / "svc"))
    _, url = start(svc_store)
    start_workers(url, 2)
    outcomes = run_jobs(specs, service=url)
    assert [o.status for o in outcomes] == ["ok"] * 6
    # exact decoded round-trip, tuples and int keys included
    assert outcomes[3].result == {"value": 3, "pair": ("a", 1),
                                  "by_id": {7: 1.5}}
    assert all(o.attempts == 1 for o in outcomes)

    local_store = ResultStore(str(tmp_path / "local"))
    local = run_jobs(specs, jobs=1, store=local_store)
    assert [o.result for o in local] == [o.result for o in outcomes]

    svc_records = {r["hash"]: _record_essence(r)
                   for r in svc_store.records()}
    local_records = {r["hash"]: _record_essence(r)
                     for r in local_store.records()}
    assert svc_records == local_records
    assert len(svc_records) == 6


def test_service_resubmit_serves_cache_without_reexecuting(
        tmp_path, coordinator_factory):
    start, start_workers = coordinator_factory
    specs = [JobSpec.make(job_ok, label=f"j{i}", value=i) for i in range(3)]
    store = ResultStore(str(tmp_path / "svc"))
    coordinator, url = start(store)
    start_workers(url, 1)
    first = run_jobs(specs, service=url)
    assert all(o.status == "ok" for o in first)
    executed = coordinator.counters["jobs_completed"].value

    second = run_jobs(specs, service=url)
    assert [o.result for o in second] == [o.result for o in first]
    assert coordinator.counters["jobs_completed"].value == executed
    assert coordinator.counters["jobs_deduped"].value == 3

    # a *restarted* coordinator over the same store serves from disk:
    # the resume-after-kill path in the quickstart
    revived, url2 = start(ResultStore(str(tmp_path / "svc")))
    third = run_jobs(specs, service=url2)
    assert [o.result for o in third] == [o.result for o in first]
    assert revived.counters["store_hits"].value == 3
    assert revived.counters["jobs_completed"].value == 0


def test_service_local_store_also_caches_client_side(
        tmp_path, coordinator_factory):
    start, start_workers = coordinator_factory
    specs = [JobSpec.make(job_ok, label="j", value=5)]
    _, url = start(ResultStore(str(tmp_path / "svc")))
    start_workers(url, 1)
    client_store = ResultStore(str(tmp_path / "client"))
    run_jobs(specs, store=client_store, service=url)
    assert len(client_store) == 1
    # second run never reaches the coordinator: local cache hit
    outcomes = run_jobs(specs, store=client_store,
                        service="http://127.0.0.1:1")
    assert outcomes[0].status == "cached"


def test_service_job_failure_charges_retry_budget(coordinator_factory):
    start, start_workers = coordinator_factory
    coordinator, url = start(None, retries=1)
    start_workers(url, 1)
    outcomes = run_jobs([JobSpec.make(job_raise, label="boom")],
                        service=url)
    assert outcomes[0].status == "failed"
    assert outcomes[0].attempts == 2  # first try + one charged retry
    assert "injected failure" in outcomes[0].error
    assert coordinator.counters["jobs_failed"].value == 1


# --- lease expiry: executor death never charges the job ----------------------

def test_lease_expiry_requeues_without_charging(tmp_path,
                                                coordinator_factory):
    start, start_workers = coordinator_factory
    store = ResultStore(str(tmp_path / "svc"))
    coordinator, url = start(store, lease_ttl_s=0.3)
    spec = JobSpec.make(job_ok, label="j", value=1)
    _, body = request_json(url, "/submit",
                           {"specs": [to_jsonable(spec)]})
    job_id = body["jobs"][0]["id"]

    # a "worker" that claims and then silently dies (never heartbeats)
    _, claimed = request_json(url, "/claim", {"worker": "doomed"})
    assert claimed["job"]["id"] == job_id
    time.sleep(0.4)  # let the lease lapse

    start_workers(url, 1)
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        _, res = request_json(url, "/results", {"ids": [job_id]})
        if res["jobs"][job_id]["status"] == "done":
            break
        time.sleep(0.05)
    info = res["jobs"][job_id]
    assert info["status"] == "done"
    assert info["attempts"] == 1  # the doomed claim was not charged
    assert coordinator.counters["leases_expired"].value >= 1
    record = store.load_record(spec)
    assert record["attempts"] == 1


def test_sigkilled_worker_job_finishes_elsewhere(tmp_path,
                                                 coordinator_factory):
    start, start_workers = coordinator_factory
    store = ResultStore(str(tmp_path / "svc"))
    coordinator, url = start(store, lease_ttl_s=0.5)
    marker = str(tmp_path / "marker")
    spec = JobSpec.make(job_hang_once, label="hang-once", marker=marker)
    request_json(url, "/submit", {"specs": [to_jsonable(spec)]})

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO, "src"), os.path.dirname(__file__)])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "worker", url,
         "--name", "victim", "--poll", "0.05"],
        env=env, cwd=REPO,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 30
        while not os.path.exists(marker):
            assert time.monotonic() < deadline, "worker never started job"
            assert proc.poll() is None, "worker died before claiming"
            time.sleep(0.05)
        proc.kill()  # SIGKILL mid-job: no heartbeat, no /complete
        proc.wait(timeout=10)

        start_workers(url, 1)
        job_id = spec.hash
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            _, res = request_json(url, "/results", {"ids": [job_id]})
            if res["jobs"][job_id]["status"] == "done":
                break
            time.sleep(0.05)
        info = res["jobs"][job_id]
        assert info["status"] == "done"
        assert info["result"] == 42
        assert info["attempts"] == 1  # the killed attempt was uncharged
        assert coordinator.counters["leases_expired"].value >= 1
        assert store.load_record(spec)["attempts"] == 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_stale_completion_rejected(coordinator_factory):
    start, _ = coordinator_factory
    coordinator, url = start(None, lease_ttl_s=0.2)
    spec = JobSpec.make(job_ok, label="j")
    request_json(url, "/submit", {"specs": [to_jsonable(spec)]})
    _, claimed = request_json(url, "/claim", {"worker": "slow"})
    lease = claimed["job"]["lease"]
    time.sleep(0.3)  # expire without heartbeating
    _, reply = request_json(url, "/complete", {
        "lease": lease, "worker": "slow", "ok": True, "result": 1,
        "elapsed_s": 0.3})
    assert reply["accepted"] is False
    assert coordinator.counters["stale_completions"].value == 1
    # the requeued job is claimable again and completes normally
    _, claimed2 = request_json(url, "/claim", {"worker": "fresh"})
    assert claimed2["job"]["attempts"] == 1
    _, reply2 = request_json(url, "/complete", {
        "lease": claimed2["job"]["lease"], "worker": "fresh",
        "ok": True, "result": 2, "elapsed_s": 0.1})
    assert reply2["accepted"] is True


def test_heartbeat_keeps_short_ttl_lease_alive(coordinator_factory):
    start, start_workers = coordinator_factory
    coordinator, url = start(None, lease_ttl_s=0.4)
    # job runs ~3x the TTL; only heartbeats keep it from expiring
    spec = JobSpec.make(job_nap, label="nap", duration=1.2)
    request_json(url, "/submit", {"specs": [to_jsonable(spec)]})
    start_workers(url, 1)
    deadline = time.monotonic() + 15
    status = None
    while time.monotonic() < deadline:
        _, res = request_json(url, "/results", {"ids": [spec.hash]})
        status = res["jobs"][spec.hash]["status"]
        if status == "done":
            break
        time.sleep(0.05)
    assert status == "done"
    assert coordinator.counters["leases_expired"].value == 0
    assert coordinator.counters["leases_renewed"].value >= 1
    assert res["jobs"][spec.hash]["attempts"] == 1


# --- backpressure ------------------------------------------------------------

def test_submit_backpressure_429(coordinator_factory):
    start, _ = coordinator_factory
    _, url = start(None, max_queue=2)
    specs = [to_jsonable(JobSpec.make(job_ok, label=f"j{i}", value=i))
             for i in range(3)]
    with pytest.raises(Backpressure) as exc:
        request_json(url, "/submit", {"specs": specs})
    assert exc.value.retry_after_s > 0
    # the rejection was atomic: nothing from the batch was admitted
    _, progress = request_json(url, "/api/progress")
    assert progress["total"] == 0
    # a batch that fits is accepted
    _, body = request_json(url, "/submit", {"specs": specs[:2]})
    assert [j["status"] for j in body["jobs"]] == ["queued", "queued"]


def test_client_waits_out_backpressure(coordinator_factory):
    start, start_workers = coordinator_factory
    import repro.service.client as client_mod

    _, url = start(None, max_queue=4)
    start_workers(url, 2)
    specs = [JobSpec.make(job_ok, label=f"j{i}", value=i) for i in range(9)]
    original = client_mod.SUBMIT_CHUNK
    client_mod.SUBMIT_CHUNK = 3  # several chunks against a tiny queue
    try:
        notes = []
        outcomes = run_jobs(specs, service=url, log=notes.append)
    finally:
        client_mod.SUBMIT_CHUNK = original
    assert all(o.status == "ok" for o in outcomes)
    assert [o.result["value"] for o in outcomes] == list(range(9))


# --- dashboard and progress --------------------------------------------------

def test_progress_and_dashboard_endpoints(tmp_path, coordinator_factory):
    start, start_workers = coordinator_factory
    store = ResultStore(str(tmp_path / "svc"))
    _, url = start(store)
    start_workers(url, 1)
    specs = [JobSpec.make(job_ok, label=f"j{i}", value=i) for i in range(2)]
    run_jobs(specs, service=url)

    _, progress = request_json(url, "/api/progress")
    assert progress["total"] == 2 and progress["finished"] == 2
    assert progress["by_status"]["done"] == 2
    assert progress["queue"]["pending"] == 0
    assert len(progress["workers"]) == 1
    assert progress["workers"][0]["jobs_done"] == 2
    assert sum(progress["throughput"]["buckets"]) == 2
    assert progress["store"]["records"] == 2
    statuses = {j["label"]: j["status"] for j in progress["jobs"]}
    assert statuses == {"j0": "done", "j1": "done"}

    html = urllib.request.urlopen(url + "/").read().decode()
    assert "repro sweep coordinator" in html
    assert "/api/progress" in html  # the page polls the JSON API
    _, health = request_json(url, "/healthz")
    assert health == {"ok": True}
    status, body = request_json(url, "/nope", {})
    assert status == 404


def test_bad_requests_do_not_kill_the_server(coordinator_factory):
    start, _ = coordinator_factory
    _, url = start(None)
    status, body = request_json(url, "/submit", {"specs": []})
    assert status == 400
    status, _ = request_json(url, "/submit", {"specs": [{"bogus": 1}]})
    assert status == 500  # undecodable spec reported, server alive
    _, health = request_json(url, "/healthz")
    assert health == {"ok": True}


# --- service CLI -------------------------------------------------------------

def test_cli_submit_and_status(tmp_path, capsys, coordinator_factory):
    start, _ = coordinator_factory
    _, url = start(ResultStore(str(tmp_path / "svc")))
    assert service_main(["submit", url, "scalability",
                         "--schemes", "presto", "--points", "2",
                         "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "submitted 1 spec(s)" in out and "queued" in out
    assert service_main(["status", url]) == 0
    out = capsys.readouterr().out
    assert "0/1 finished" in out
    assert service_main(["status", url, "--json"]) == 0
    progress = json.loads(capsys.readouterr().out)
    assert progress["queue"]["pending"] == 1


def test_cli_rejects_unknown_sweep_and_dead_coordinator(capsys):
    assert service_main(["submit", "http://127.0.0.1:1", "nope"]) == 2
    assert "unknown sweep" in capsys.readouterr().err
    assert service_main(["status", "http://127.0.0.1:1"]) == 1
    assert "unreachable" in capsys.readouterr().err


def test_collect_sweep_specs_matches_direct_construction():
    from repro.experiments.scalability import scalability_specs

    from repro.units import msec

    specs = collect_sweep_specs("scalability", schemes="presto,ecmp",
                                points="2,4", seeds="1")
    assert len(specs) == 4
    direct = scalability_specs(
        schemes=("presto", "ecmp"), path_counts=(2, 4), seeds=(1,),
        warm_ns=msec(15), measure_ns=msec(25))
    assert {s.hash for s in specs} == {s.hash for s in direct}


# --- the shared lease queue --------------------------------------------------

def test_lease_queue_fail_charges_release_does_not():
    q = LeaseQueue(retries=1)
    q.add(0, "spec")
    lease = q.claim(worker="a", ttl_s=None)
    assert lease.attempts == 1
    status, _ = q.release(lease.lease_id)  # executor died: uncharged
    assert status == "requeued"
    lease = q.claim(worker="b")
    assert lease.attempts == 1  # still the first real attempt
    status, _ = q.fail(lease.lease_id)  # the job itself failed: charged
    assert status == "retry"
    lease = q.claim(worker="c")
    assert lease.attempts == 2
    status, _ = q.fail(lease.lease_id)
    assert status == "failed"  # budget (1 retry) spent
    assert q.idle


def test_lease_queue_release_cap_declares_cursed_job_failed():
    q = LeaseQueue(retries=1, max_releases=3)
    q.add(0, "spec")
    for n in range(2):
        lease = q.claim()
        assert q.release(lease.lease_id)[0] == "requeued", n
    lease = q.claim()
    status, last = q.release(lease.lease_id)
    assert status == "failed"
    assert last.attempts == 1  # reports the true attempt count
    assert q.idle


def test_lease_queue_expiry_and_renewal():
    now = [100.0]
    q = LeaseQueue(clock=lambda: now[0])
    q.add(0, "spec")
    lease = q.claim(ttl_s=5.0)
    assert q.expired(now[0]) == []
    now[0] += 6.0
    assert [l.lease_id for l in q.expired(now[0])] == [lease.lease_id]
    assert q.renew(lease.lease_id, 5.0)
    assert q.expired(now[0]) == []
