"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams


def test_initial_time_is_zero():
    assert Simulator().now == 0


def test_schedule_and_run_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(5, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(10, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: sim.schedule_at(25, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [25]


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_run_returns_event_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    assert sim.run() == 7


def test_max_events_limit():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i, lambda: None)
    assert sim.run(max_events=3) == 3
    assert sim.run() == 7


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 9


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_heap_bounded_under_cancel_churn():
    """Regression for the cancelled-event heap leak: TCP-style
    cancel/re-arm of a long-dated timer per ACK used to leave every
    cancelled entry in the heap until its far-future pop time."""
    sim = Simulator()
    n_timers = 64
    timers = [sim.schedule(20_000_000 + i, lambda: None)
              for i in range(n_timers)]
    ops = 20_000
    for i in range(ops):
        idx = i % n_timers
        timers[idx].cancel()
        timers[idx] = sim.schedule(20_000_000 + i, lambda: None)
    # without compaction the heap would hold ~ops dead entries
    assert sim.pending_count() < 4 * n_timers + 256


def test_cancel_churn_preserves_results():
    """Compaction must not change which events fire or in what order."""
    sim = Simulator()
    fired = []
    timers = {}
    for i in range(64):
        timers[i] = sim.schedule(1_000_000 + i, fired.append, ("stale", i))
    for round_ in range(40):
        for i in range(64):
            timers[i].cancel()
            timers[i] = sim.schedule(
                1_000_000 + 64 * round_ + i, fired.append, ("live", round_, i))
    sim.run()
    assert fired == [("live", 39, i) for i in range(64)]


def test_compaction_during_run_keeps_pop_order():
    """Mass-cancelling from inside a callback triggers compaction while
    run() is mid-dispatch; the surviving events must still fire exactly
    once, in (time, seq) order."""
    sim = Simulator()
    fired = []
    victims = [sim.schedule(1_000_000 + i, fired.append, f"victim{i}")
               for i in range(500)]

    def massacre():
        fired.append("massacre")
        for v in victims[:400]:
            v.cancel()
        sim.schedule(1, fired.append, "after")

    sim.schedule(10, massacre)
    sim.schedule(20, fired.append, "tail")
    sim.run()
    assert fired[:3] == ["massacre", "after", "tail"]
    assert fired[3:] == [f"victim{i}" for i in range(400, 500)]
    assert sim.events_executed == len(fired)


def test_events_executed_counts_fired_not_cancelled():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.schedule(10, lambda: None).cancel()
    sim.run()
    assert sim.events_executed == 5
    assert sim.step() is False
    assert sim.events_executed == 5


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=7).stream("x").random()
        b = RandomStreams(seed=7).stream("x").random()
        assert a == b

    def test_different_names_decorrelated(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("x").random() != streams.stream("y").random()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random()
        b = RandomStreams(seed=2).stream("x").random()
        assert a != b

    def test_fork_is_deterministic(self):
        a = RandomStreams(seed=3).fork("child").stream("s").random()
        b = RandomStreams(seed=3).fork("child").stream("s").random()
        assert a == b
