"""Unit tests for the switch: exact-match, ECMP groups, failover."""

from repro.net.addresses import shadow_mac, shadow_mac_tree
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.port import Port
from repro.net.switch import HASH_FLOW, HASH_FLOWCELL, EcmpGroup, Switch
from repro.sim.engine import Simulator
from repro.units import gbps, usec


class SinkNode:
    def __init__(self, name="sink"):
        self.name = name
        self.received = []

    def receive(self, pkt, in_port):
        self.received.append(pkt)


def wire(sim, sw, name):
    """Attach a port from sw to a fresh sink; returns (port, sink)."""
    link = Link(name, gbps(10), usec(1))
    port = Port(sim, name, link, 100_000)
    sink = SinkNode(name)
    port.peer = sink
    sw.add_port(port)
    return port, sink


def pkt(dst_mac, flow=1, cell=1):
    return Packet(flow_id=flow, src_host=0, dst_host=1, dst_mac=dst_mac,
                  kind="data", seq=0, payload_len=100, flowcell_id=cell)


def test_exact_match_forwarding():
    sim = Simulator()
    sw = Switch("S")
    p1, sink1 = wire(sim, sw, "p1")
    p2, sink2 = wire(sim, sw, "p2")
    sw.install_route(42, p2)
    sw.receive(pkt(42), None)
    sim.run()
    assert len(sink2.received) == 1
    assert sink1.received == []


def test_no_route_drop_counted():
    sim = Simulator()
    sw = Switch("S")
    wire(sim, sw, "p1")
    sw.receive(pkt(99), None)
    assert sw.no_route_drops == 1


def test_remove_route():
    sim = Simulator()
    sw = Switch("S")
    p1, _ = wire(sim, sw, "p1")
    sw.install_route(42, p1)
    sw.remove_route(42)
    sw.receive(pkt(42), None)
    assert sw.no_route_drops == 1


def test_ecmp_flow_hash_is_sticky_per_flow():
    sim = Simulator()
    sw = Switch("S")
    ports = [wire(sim, sw, f"p{i}")[0] for i in range(4)]
    group = EcmpGroup(ports, salt=7, mode=HASH_FLOW)
    chosen = {group.select(pkt(0, flow=5, cell=c)).name for c in range(10)}
    assert len(chosen) == 1  # same flow, any flowcell -> same port


def test_ecmp_flowcell_hash_spreads_cells():
    sim = Simulator()
    sw = Switch("S")
    ports = [wire(sim, sw, f"p{i}")[0] for i in range(4)]
    group = EcmpGroup(ports, salt=7, mode=HASH_FLOWCELL)
    chosen = {group.select(pkt(0, flow=5, cell=c)).name for c in range(64)}
    assert len(chosen) == 4  # flowcells spread across all ports


def test_ecmp_distribution_roughly_uniform():
    sim = Simulator()
    sw = Switch("S")
    ports = [wire(sim, sw, f"p{i}")[0] for i in range(4)]
    group = EcmpGroup(ports, salt=3, mode=HASH_FLOW)
    counts = {p.name: 0 for p in ports}
    for flow in range(4000):
        counts[group.select(pkt(0, flow=flow)).name] += 1
    for c in counts.values():
        assert 800 < c < 1200  # ~1000 each


def test_ecmp_default_fallback():
    sim = Simulator()
    sw = Switch("S")
    p1, sink1 = wire(sim, sw, "p1")
    sw.ecmp_default = EcmpGroup([p1])
    sw.receive(pkt(12345), None)
    sim.run()
    assert len(sink1.received) == 1


def test_failover_redirects_after_latency():
    sim = Simulator()
    sw = Switch("S")
    p1, sink1 = wire(sim, sw, "p1")
    p2, sink2 = wire(sim, sw, "p2")
    group = sw.enable_failover(latency_ns=usec(10))
    group.set_backup(p1, p2)
    sw.install_route(42, p1)
    p1.link.set_down()
    # before detection latency: dropped
    sw.receive(pkt(42), None)
    assert sw.no_route_drops == 1
    sim.run(until=usec(20))
    sw.receive(pkt(42), None)
    sim.run()
    assert len(sink2.received) == 1


def test_failover_rewrite_applied():
    sim = Simulator()
    sw = Switch("S")
    p1, _ = wire(sim, sw, "p1")
    p2, sink2 = wire(sim, sw, "p2")
    group = sw.enable_failover(latency_ns=0)

    def relabel(p):
        p.dst_mac = shadow_mac(2, 7)

    group.set_backup(p1, p2, rewrite=relabel)
    sw.install_route(shadow_mac(1, 7), p1)
    p1.link.set_down()
    sw.receive(pkt(shadow_mac(1, 7)), None)
    sim.run()
    assert len(sink2.received) == 1
    assert shadow_mac_tree(sink2.received[0].dst_mac) == 2


def test_ttl_guard_kills_looping_packet():
    sim = Simulator()
    sw = Switch("S")
    p1, _ = wire(sim, sw, "p1")
    sw.install_route(42, p1)
    p = pkt(42)
    p.hops = Switch.MAX_HOPS + 1
    sw.receive(p, None)
    assert sw.ttl_drops == 1
    assert sw.dropped_pkts() == 1


def test_failover_reverts_to_primary_after_recovery():
    """Regression for the recovery asymmetry: once the primary link is
    repaired the group must route on it again, and a *second* failure
    must pay the detection latency afresh instead of reusing the first
    failure's timestamp."""
    sim = Simulator()
    sw = Switch("S")
    p1, sink1 = wire(sim, sw, "p1")
    p2, sink2 = wire(sim, sw, "p2")
    group = sw.enable_failover(latency_ns=usec(10))
    group.set_backup(p1, p2)
    sw.install_route(42, p1)

    p1.link.set_down()
    sim.run(until=usec(20))
    sw.receive(pkt(42), None)
    sim.run(until=usec(30))
    assert len(sink2.received) == 1  # detoured while down

    p1.link.set_up()
    sw.receive(pkt(42), None)
    sim.run(until=usec(40))
    assert len(sink1.received) == 1  # back on the primary

    p1.link.set_down()  # second failure: detection clock restarts
    sw.receive(pkt(42), None)
    assert sw.no_route_drops == 1   # still within detection latency
    sim.run(until=usec(60))
    sw.receive(pkt(42), None)
    sim.run()
    assert len(sink2.received) == 2
