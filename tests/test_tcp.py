"""TCP behaviour tests: transfer correctness, recovery machinery.

End-to-end cases run on a tiny single-switch testbed (no CPU model, so
the network is the only variable); unit cases poke the sender directly.
"""

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.host.tcp import LOSS, OPEN, RECOVERY, TcpConfig
from repro.units import KB, MB, msec, usec


def mini_testbed(scheme="optimal", **cfg_kwargs):
    kwargs = dict(n_leaves=1, hosts_per_leaf=2, model_cpu=False)
    kwargs.update(cfg_kwargs)
    return Testbed(TestbedConfig(scheme=scheme, **kwargs))


def test_sized_transfer_completes_exactly():
    tb = mini_testbed()
    app = tb.add_elephant(0, 1, size_bytes=500 * KB)
    tb.run(msec(50))
    assert app.fct_ns is not None
    receiver = tb.hosts[1].receivers[app.flow_id]
    assert receiver.delivered_bytes == 500 * KB
    assert receiver.rcv_nxt == 500 * KB


def test_transfer_is_contiguous_no_gaps():
    tb = mini_testbed()
    app = tb.add_elephant(0, 1, size_bytes=200 * KB)
    tb.run(msec(50))
    receiver = tb.hosts[1].receivers[app.flow_id]
    assert not receiver.ooo  # nothing left out of order


def test_unbounded_flow_reaches_line_rate():
    tb = mini_testbed()
    app = tb.add_elephant(0, 1)
    tb.run(msec(10))
    rate = app.delivered_bytes() * 8 / 10e-3
    assert rate > 9e9  # ~9.4 Gbps goodput on a 10 Gbps link


def test_fct_scales_with_size():
    tb = mini_testbed()
    small = tb.add_elephant(0, 1, size_bytes=50 * KB)
    tb.run(msec(30))
    tb2 = mini_testbed()
    big = tb2.add_elephant(0, 1, size_bytes=2 * MB)
    tb2.run(msec(50))
    assert small.fct_ns < big.fct_ns


def test_two_flows_share_receiver_link():
    tb = mini_testbed(hosts_per_leaf=3)
    a = tb.add_elephant(0, 2)
    b = tb.add_elephant(1, 2, start_ns=usec(200))
    tb.run(msec(30))
    ra = a.delivered_bytes() * 8 / 30e-3 / 1e9
    rb = b.delivered_bytes() * 8 / 30e-3 / 1e9
    assert 8.5 < ra + rb < 9.6  # receiver link saturated
    assert min(ra, rb) > 1.0    # nobody starved


def test_loss_recovery_under_tiny_buffer():
    """A shallow switch buffer forces real loss; the transfer must still
    complete, with retransmissions."""
    tb = mini_testbed(hosts_per_leaf=3, switch_buffer_bytes=30 * KB)
    a = tb.add_elephant(0, 2, size_bytes=1 * MB)
    b = tb.add_elephant(1, 2, size_bytes=1 * MB, start_ns=usec(100))
    tb.run(msec(200))
    sa = tb.hosts[0].senders[a.flow_id]
    sb = tb.hosts[1].senders[b.flow_id]
    assert a.fct_ns is not None, "flow a did not complete"
    assert b.fct_ns is not None, "flow b did not complete"
    assert sa.bytes_retx + sb.bytes_retx > 0
    assert tb.hosts[2].receivers[a.flow_id].delivered_bytes == 1 * MB
    assert tb.hosts[2].receivers[b.flow_id].delivered_bytes == 1 * MB


class TestSenderUnit:
    def make_sender(self):
        tb = mini_testbed()
        sender = tb.hosts[0].open_sender(999, 1)
        return tb, sender

    def test_write_requires_positive(self):
        _, sender = self.make_sender()
        with pytest.raises(ValueError):
            sender.write(0)

    def test_initial_state(self):
        _, sender = self.make_sender()
        assert sender.state == OPEN
        assert sender.snd_una == sender.snd_nxt == 0

    def test_rtt_estimator_converges(self):
        tb = mini_testbed()
        app = tb.add_elephant(0, 1, size_bytes=500 * KB)
        tb.run(msec(50))
        sender = tb.hosts[0].senders[app.flow_id]
        assert sender.srtt_ns is not None
        # idle-ish path: srtt well under a millisecond
        assert sender.srtt_ns < msec(2)

    def test_rto_floor_respected(self):
        tb = mini_testbed()
        app = tb.add_elephant(0, 1, size_bytes=100 * KB)
        tb.run(msec(50))
        sender = tb.hosts[0].senders[app.flow_id]
        assert sender.rto_ns >= tb.cfg.tcp.min_rto_ns

    def test_jitter_factor_bounds(self):
        _, sender = self.make_sender()
        for timeouts in range(20):
            sender.timeouts = timeouts
            assert 1.0 <= sender._rto_jitter() < 1.1000001


def test_rto_fires_when_network_blackholes():
    tb = mini_testbed()
    app = tb.add_elephant(0, 1, size_bytes=100 * KB)
    tb.run(usec(50))  # let some packets into the fabric
    # kill the only link to the receiver
    for link in tb.topo.links:
        link.set_down()
    tb.run(msec(100))
    sender = tb.hosts[0].senders[app.flow_id]
    assert sender.timeouts >= 1
    assert sender.state == LOSS


def test_completion_callback_fires_once():
    tb = mini_testbed()
    done = []
    app = tb.add_elephant(0, 1, size_bytes=64 * KB,
                          on_complete=lambda a: done.append(a))
    tb.run(msec(20))
    assert len(done) == 1


def test_mice_interleaved_with_elephant_complete():
    tb = mini_testbed(hosts_per_leaf=3)
    tb.add_elephant(0, 2)
    mice = tb.add_mice(1, 2, size_bytes=50 * KB, interval_ns=msec(2))
    tb.run(msec(30))
    assert len(mice.fcts_ns) >= 10
    assert all(f > 0 for f in mice.fcts_ns)
