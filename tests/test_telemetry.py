"""Tests for the telemetry subsystem (repro.telemetry).

Covers the ISSUE-mandated behaviors: telemetry is a pure observer
(simulation results byte-identical with it on or off, and the off
path serializes exactly as before); metric snapshots are deterministic
across serial and parallel runs; the exported Chrome trace is valid,
Perfetto-loadable JSON; and the config validation raises actionable
errors.
"""

import json

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.experiments.scalability import (
    run_scalability_seed,
    scalability_config,
    scalability_specs,
)
from repro.runner import (
    ResultStore,
    canonical_json,
    collect_results,
    run_jobs,
    to_jsonable,
)
from repro.sim.engine import Simulator
from repro.telemetry import (
    NULL_TELEMETRY,
    Counter,
    Histogram,
    MetricsRegistry,
    TelemetryConfig,
    Tracer,
    per_cell_telemetry,
)
from repro.units import msec

TINY = dict(warm_ns=msec(2), measure_ns=msec(3))


# --- metric primitives ------------------------------------------------------

def test_counter_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.snapshot() == 5
    c.record_total(9)
    assert c.snapshot() == 9
    with pytest.raises(ValueError):
        c.record_total(3)


def test_histogram_buckets_and_stats():
    h = Histogram("h", edges=(10, 100, 1000))
    for v in (5, 10, 11, 5000):
        h.observe(v)
    snap = h.snapshot()
    # bisect_right semantics: a value equal to an edge falls below it
    assert snap["counts"] == [2, 1, 0, 1]
    assert snap["count"] == 4
    assert snap["sum"] == 5026
    assert snap["min"] == 5 and snap["max"] == 5000


def test_registry_snapshot_sorted_and_typed():
    reg = MetricsRegistry()
    reg.counter("z.last").inc()
    reg.gauge("a.first").set(3)
    reg.histogram("m.mid", edges=(1, 2)).observe(1)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    with pytest.raises(ValueError):
        reg.gauge("z.last")  # name already registered as a counter


# --- tracer -----------------------------------------------------------------

def test_tracer_chrome_export_is_valid_json(tmp_path):
    sim = Simulator()
    tr = Tracer(sim)
    tr.instant("gro", "flush", "h0", {"n": 3}, ts_ns=1500)
    tr.complete("nic", "poll", "h0", start_ns=2000, dur_ns=500, args={})
    path = tmp_path / "t.trace.json"
    tr.write_chrome(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    # one thread_name metadata record plus the two events
    phases = sorted(e["ph"] for e in events)
    assert phases == ["M", "X", "i"]
    inst = next(e for e in events if e["ph"] == "i")
    assert inst["ts"] == 1.5 and inst["s"] == "t"
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == 2.0 and span["dur"] == 0.5


def test_tracer_bounded():
    tr = Tracer(Simulator(), max_events=2)
    for i in range(5):
        tr.instant("c", "n", "x", {}, ts_ns=i)
    assert len(tr.events) == 2
    assert tr.dropped_events == 3


def test_per_cell_telemetry_names_traces():
    cfg = TelemetryConfig(trace=True, trace_dir="out")
    cell = per_cell_telemetry(cfg, "sweep/presto/paths2/seed1")
    assert cell.trace_name == "sweep_presto_paths2_seed1"
    assert per_cell_telemetry(None, "x") is None
    # tracing off: nothing to name, config passes through untouched
    plain = TelemetryConfig()
    assert per_cell_telemetry(plain, "x") is plain


# --- pure-observer guarantees ----------------------------------------------

def _strip_metrics(result):
    encoded = to_jsonable(result)
    encoded["fields"].pop("metrics", None)
    return json.dumps(encoded, sort_keys=True)


def test_results_identical_with_telemetry_on_and_off():
    cfg = scalability_config("presto", 2, 1)
    off = run_scalability_seed(cfg, **TINY)
    on = run_scalability_seed(cfg, **TINY, telemetry=TelemetryConfig())
    assert off.metrics is None
    assert on.metrics, "telemetry on must produce a snapshot"
    assert _strip_metrics(off) == _strip_metrics(on)


def test_telemetry_off_serialization_has_no_metrics_key():
    result = run_scalability_seed(scalability_config("presto", 2, 1), **TINY)
    assert "metrics" not in to_jsonable(result)["fields"]


def test_snapshot_deterministic_serial_vs_parallel(tmp_path):
    specs_kwargs = dict(
        schemes=("presto",), path_counts=(2,), seeds=(1, 2),
        telemetry=TelemetryConfig(),
        **TINY,
    )
    serial = collect_results(run_jobs(
        scalability_specs(**specs_kwargs), jobs=1,
        store=ResultStore(str(tmp_path / "serial")),
    ))
    parallel = collect_results(run_jobs(
        scalability_specs(**specs_kwargs), jobs=2,
        store=ResultStore(str(tmp_path / "parallel")),
    ))
    assert [canonical_json(r) for r in serial] == \
           [canonical_json(r) for r in parallel]
    assert all(r.metrics for r in serial)


def test_metric_snapshots_land_in_result_store(tmp_path):
    store = ResultStore(str(tmp_path))
    specs = scalability_specs(
        schemes=("presto",), path_counts=(2,), seeds=(1,),
        telemetry=TelemetryConfig(), **TINY,
    )
    run_jobs(specs, jobs=1, store=store)
    record = store.load_record(specs[0])
    metrics = record["result"]["fields"]["metrics"]
    assert any(name.startswith("host.h0.gro.") for name in metrics)
    assert any(name.startswith("switch.") for name in metrics)


# --- testbed integration ----------------------------------------------------

def test_testbed_defaults_to_null_telemetry():
    tb = Testbed(TestbedConfig(scheme="presto"))
    assert tb.telemetry is NULL_TELEMETRY
    assert not tb.telemetry.enabled
    assert tb.telemetry.snapshot() == {}
    assert tb.telemetry.export_trace() is None


def test_trace_export_end_to_end(tmp_path):
    telemetry = TelemetryConfig(
        trace=True, trace_dir=str(tmp_path), trace_name="cell")
    run_scalability_seed(
        scalability_config("presto", 2, 1), **TINY, telemetry=telemetry)
    doc = json.loads((tmp_path / "cell.trace.json").read_text())
    cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] != "M"}
    assert {"gro", "nic", "presto"} <= cats
    # every complete span carries a duration, instants never do
    for e in doc["traceEvents"]:
        assert ("dur" in e) == (e["ph"] == "X")
    assert (tmp_path / "cell.jsonl").exists()


def test_drop_causes_counted():
    # tiny switch buffers force drops; the cause taxonomy must see them
    cfg = TestbedConfig(scheme="ecmp", switch_pool_bytes=40_000, seed=3)
    tb = Testbed(cfg, telemetry=TelemetryConfig())
    rng = tb.streams.stream("starts")
    for src, dst in ((0, 8), (1, 9), (2, 10), (3, 11)):
        tb.add_elephant(src, dst, start_ns=rng.randrange(1000))
    tb.run(msec(6))
    snap = tb.telemetry.snapshot()
    dropped = sum(v for k, v in snap.items()
                  if k.endswith(".drops.total"))
    by_cause = sum(v for k, v in snap.items()
                   if ".drops." in k and not k.endswith(".total"))
    assert dropped > 0, "workload was sized to overflow the shared pool"
    assert by_cause == dropped


# --- config validation ------------------------------------------------------

def test_config_validation_unknown_scheme():
    with pytest.raises(ValueError, match="unknown scheme"):
        TestbedConfig(scheme="warp-drive")


@pytest.mark.parametrize("kwargs", [
    dict(n_spines=0),
    dict(link_rate_bps=0),
    dict(flowcell_bytes=-1),
    dict(prop_delay_ns=-5),
    dict(presto_mode="psychic"),
    dict(gro_override="nope"),
])
def test_config_validation_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        TestbedConfig(scheme="presto", **kwargs)
