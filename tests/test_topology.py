"""Unit tests for topology builders and host attachment."""

import pytest

from repro.host.gro import OfficialGro
from repro.host.host import Host
from repro.net.addresses import host_mac
from repro.net.switch import HASH_FLOWCELL
from repro.net.topology import (
    build_clos,
    build_oversub,
    build_scalability,
    build_single_switch,
)
from repro.sim.engine import Simulator


def make_host(sim, host_id):
    return Host(sim, host_id, gro=OfficialGro(), model_cpu=False)


def test_clos_shape():
    sim = Simulator()
    topo = build_clos(sim, n_spines=4, n_leaves=4)
    assert len(topo.spines) == 4
    assert len(topo.leaves) == 4
    # full bipartite leaf-spine mesh
    assert len(topo.links) == 16
    for leaf in topo.leaves:
        assert len(topo.uplinks(leaf)) == 4


def test_scalability_topology_paths():
    sim = Simulator()
    with pytest.warns(DeprecationWarning, match="build_fabric"):
        topo = build_scalability(sim, n_paths=6)
    assert len(topo.spines) == 6
    assert len(topo.leaves) == 2


def test_oversub_topology():
    sim = Simulator()
    with pytest.warns(DeprecationWarning, match="build_fabric"):
        topo = build_oversub(sim)
    assert len(topo.spines) == 2
    assert len(topo.leaves) == 2


def test_single_switch():
    sim = Simulator()
    topo = build_single_switch(sim)
    assert len(topo.switches) == 1
    assert topo.spines == []


def test_attach_host_installs_route_and_wires_ports():
    sim = Simulator()
    topo = build_clos(sim, 2, 2)
    host = make_host(sim, 0)
    topo.attach_host(host, topo.leaves[0])
    leaf = topo.leaves[0]
    assert host_mac(0) in leaf.l2_table
    assert host.nic.port is not None
    assert topo.host_leaf[0] is leaf


def test_attach_same_host_twice_rejected():
    sim = Simulator()
    topo = build_clos(sim, 2, 2)
    host = make_host(sim, 0)
    topo.attach_host(host, topo.leaves[0])
    with pytest.raises(ValueError):
        topo.attach_host(host, topo.leaves[1])


def test_duplicate_switch_name_rejected():
    sim = Simulator()
    topo = build_clos(sim, 2, 2)
    with pytest.raises(ValueError):
        topo.add_switch("S1")


def test_install_underlay_spine_routes_and_leaf_ecmp():
    sim = Simulator()
    topo = build_clos(sim, 2, 2)
    hosts = [make_host(sim, i) for i in range(4)]
    for i, host in enumerate(hosts):
        topo.attach_host(host, topo.leaves[i // 2])
    topo.install_underlay()
    for spine in topo.spines:
        for host_id in range(4):
            assert host_mac(host_id) in spine.l2_table
    for leaf in topo.leaves:
        assert leaf.ecmp_default is not None


def test_install_underlay_flowcell_mode():
    sim = Simulator()
    topo = build_clos(sim, 2, 2)
    host = make_host(sim, 0)
    topo.attach_host(host, topo.leaves[0])
    topo.install_underlay(leaf_hash_mode=HASH_FLOWCELL)
    assert topo.leaves[0].ecmp_default.mode == HASH_FLOWCELL


def test_port_between():
    sim = Simulator()
    topo = build_clos(sim, 2, 2)
    leaf, spine = topo.leaves[0], topo.spines[0]
    port = topo.port_between(leaf, spine)
    assert port is not None
    assert port.peer is spine
    assert topo.port_between(spine, leaf).peer is leaf
