"""Unit tests for unit conversions."""

import pytest

from repro import units


def test_time_helpers():
    assert units.usec(1) == 1_000
    assert units.msec(1) == 1_000_000
    assert units.seconds(1) == 1_000_000_000
    assert units.usec(1.5) == 1_500
    assert units.to_seconds(units.seconds(2)) == 2.0


def test_rate_helpers():
    assert units.gbps(10) == 10e9
    assert units.mbps(100) == 100e6
    assert units.kbps(64) == 64e3


def test_serialization_time():
    # 1500 bytes at 1 Gbps = 12 us
    assert units.serialization_time_ns(1500, units.gbps(1)) == 12_000
    # 1 byte at 10 Gbps rounds to 1 ns minimum granularity
    assert units.serialization_time_ns(0, units.gbps(10)) == 1


def test_serialization_time_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.serialization_time_ns(1500, 0)


def test_rate_bps_round_trip():
    dur = units.serialization_time_ns(125_000, units.gbps(1))
    assert units.rate_bps(125_000, dur) == pytest.approx(1e9, rel=1e-6)


def test_rate_bps_zero_duration():
    assert units.rate_bps(100, 0) == 0.0


def test_constants():
    assert units.MTU == 1500
    assert units.MAX_TSO_BYTES == 64 * 1024
