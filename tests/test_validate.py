"""Tests for the paper-fidelity validation subsystem (repro.validate).

Tier 1: invariant/probe units against fabricated evidence, the
``TestbedConfig(validate=True)`` opt-in on a plain (non-soak) run, the
report shapes, and CLI argument validation.  Tier 2 (nightly): a real
oracle subset end-to-end through the CLI, VALIDATION.json and back.
"""

import json

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.units import msec
from repro.validate.cli import main as validate_main
from repro.validate.invariants import (
    InvariantReport,
    InvariantViolation,
    ValidationProbe,
    bounded_transfers,
    byte_ledger,
)
from repro.validate.report import (
    OracleReport,
    validation_payload,
    write_validation_json,
)


# --- fabricated-evidence fixtures for the online probe ----------------------

class _FakeNic:
    def __init__(self):
        self.tx_segment = lambda seg: None
        self.on_segment = lambda seg: None


class _FakeGro:
    def __init__(self):
        self.merged_pkts = 0
        self._held = 0

    def held_packet_count(self):
        return self._held


class _FakeHost:
    def __init__(self, host_id):
        self.host_id = host_id
        self.nic = _FakeNic()
        self.gro = _FakeGro()


class _FakeTb:
    def __init__(self, n_hosts=2):
        self.hosts = [_FakeHost(i) for i in range(n_hosts)]


class _Seg:
    def __init__(self, flow_id, seq, end_seq, flowcell_id, pkt_count=1):
        self.flow_id = flow_id
        self.seq = seq
        self.end_seq = end_seq
        self.flowcell_id = flowcell_id
        self.pkt_count = pkt_count


# --- probe: flowcell monotonicity -------------------------------------------

def test_probe_accepts_monotone_flowcell_ids():
    tb = _FakeTb()
    probe = ValidationProbe(tb)
    tx = tb.hosts[0].nic.tx_segment
    for cell in (1, 1, 2, 2, 3):
        tx(_Seg(flow_id=9, seq=0, end_seq=100, flowcell_id=cell))
    assert probe.violations == []
    assert probe.segments_labelled == 5


def test_probe_flags_backwards_and_skipped_ids():
    tb = _FakeTb()
    probe = ValidationProbe(tb)
    tx = tb.hosts[0].nic.tx_segment
    tx(_Seg(flow_id=9, seq=0, end_seq=100, flowcell_id=1))
    tx(_Seg(flow_id=9, seq=0, end_seq=100, flowcell_id=2))
    tx(_Seg(flow_id=9, seq=0, end_seq=100, flowcell_id=1))  # backwards
    tx(_Seg(flow_id=9, seq=0, end_seq=100, flowcell_id=4))  # skips 1->4
    assert len(probe.violations) == 2
    assert "backwards" in probe.violations[0]
    assert "skipped" in probe.violations[1]


def test_probe_ignores_acks_and_tracks_flows_independently():
    tb = _FakeTb()
    probe = ValidationProbe(tb)
    tx = tb.hosts[0].nic.tx_segment
    tx(_Seg(flow_id=9, seq=100, end_seq=100, flowcell_id=999))  # ACK
    tx(_Seg(flow_id=1, seq=0, end_seq=100, flowcell_id=1))
    tx(_Seg(flow_id=2, seq=0, end_seq=100, flowcell_id=1))
    assert probe.violations == []
    assert probe.segments_labelled == 2


def test_probe_caps_recorded_violations():
    tb = _FakeTb()
    probe = ValidationProbe(tb)
    tx = tb.hosts[0].nic.tx_segment
    for i in range(ValidationProbe.MAX_RECORDED + 7):
        tx(_Seg(flow_id=9, seq=0, end_seq=100, flowcell_id=5 * (i + 1)))
    report = InvariantReport()
    probe.check(tb, report, require_drained=False)
    assert len(probe.violations) == ValidationProbe.MAX_RECORDED
    assert any("more flowcell violations" in v for v in report.violations)
    assert report.stats["flowcell_violations"] == ValidationProbe.MAX_RECORDED + 7


# --- probe: GRO packet conservation -----------------------------------------

def test_probe_gro_conservation_balanced():
    tb = _FakeTb()
    probe = ValidationProbe(tb)
    host = tb.hosts[1]
    host.gro.merged_pkts = 10
    host.nic.on_segment(_Seg(flow_id=1, seq=0, end_seq=100, flowcell_id=1,
                             pkt_count=7))
    host.gro._held = 3
    report = InvariantReport()
    probe.check(tb, report, require_drained=False)
    assert report.ok
    assert report.stats["gro_pkts_merged"] == 10
    assert report.stats["gro_pkts_pushed"] == 7
    assert report.stats["gro_pkts_held"] == 3


def test_probe_gro_conservation_violations():
    tb = _FakeTb()
    probe = ValidationProbe(tb)
    host = tb.hosts[1]
    host.gro.merged_pkts = 10
    host.nic.on_segment(_Seg(flow_id=1, seq=0, end_seq=100, flowcell_id=1,
                             pkt_count=5))
    host.gro._held = 2  # 5 + 2 != 10: packets vanished inside GRO
    report = InvariantReport()
    probe.check(tb, report, require_drained=True)
    assert not report.ok
    assert any("conservation violated" in v for v in report.violations)
    assert any("still holding" in v for v in report.violations)


# --- bounded-transfer detection ---------------------------------------------

def test_bounded_transfers_filters_unbounded_and_mice():
    class Bounded:
        size_bytes = 1000
        fct_ns = None

    class Unbounded:
        size_bytes = None
        fct_ns = None

    class MiceLike:  # periodic app: sized flows but no single fct_ns
        size_bytes = 1000

    bounded = Bounded()
    assert bounded_transfers([bounded, Unbounded(), MiceLike()]) == [bounded]


# --- TestbedConfig(validate=True) on a plain run ----------------------------

def _armed_testbed():
    tb = Testbed(TestbedConfig(scheme="presto", seed=1, validate=True))
    assert tb.validation is not None
    return tb


def test_validate_true_plain_run_passes_invariants():
    tb = _armed_testbed()
    tb.add_elephant(0, 2, size_bytes=256 * 1024)
    tb.run(msec(40))
    report = tb.last_invariant_report
    assert report is not None and report.ok
    assert report.stats["quiesced"] == 1
    assert report.stats["flows_stuck"] == 0
    assert report.stats["segments_labelled"] > 0
    assert report.stats["flowcell_violations"] == 0
    ledger = byte_ledger(tb)
    assert ledger["nic_tx"] == ledger["accounted"] > 0


def test_validate_true_mid_run_checkpoints_tolerate_in_flight():
    tb = _armed_testbed()
    tb.add_elephant(0, 2)  # unbounded: still sending at every horizon
    tb.run(msec(2))
    assert tb.last_invariant_report.ok
    assert tb.last_invariant_report.stats["in_flight"] >= 0
    tb.run(msec(4))
    assert tb.last_invariant_report.ok


def test_validate_true_raises_on_violation():
    tb = _armed_testbed()
    tb.add_elephant(0, 2, size_bytes=64 * 1024)
    tb.run(msec(20))
    assert tb.last_invariant_report.ok
    # fake a datapath accounting bug: bytes received that were never sent
    tb.hosts[0].nic.tx_bytes -= 1_000_000
    with pytest.raises(InvariantViolation, match="invariant violation"):
        tb.run(msec(21))
    assert not tb.last_invariant_report.ok


def test_validate_defaults_off_and_config_hash_unchanged():
    from repro.runner.serialize import to_jsonable

    tb = Testbed(TestbedConfig(scheme="presto", seed=1))
    assert tb.validation is None
    # armed-off configs must keep hashing like historic ones, or every
    # store entry ever written would go cold
    encoded = to_jsonable(TestbedConfig(scheme="presto", seed=1))
    assert "validate" not in encoded["fields"]


def test_faults_shim_reexports_validate_invariants():
    from repro.faults import invariants as shim
    from repro.validate import invariants as canonical

    assert shim.check_invariants is canonical.check_invariants
    assert shim.ValidationProbe is canonical.ValidationProbe
    assert shim.InvariantViolation is canonical.InvariantViolation


# --- report shapes -----------------------------------------------------------

def test_oracle_report_require_and_failures():
    report = OracleReport(oracle="demo", figure="fig0", seeds=(1, 2))
    report.require("good", True, detail="fine", x=1.5)
    report.require("bad", 0, detail="nope", y=2.0)
    assert not report.passed
    assert [c.name for c in report.failures()] == ["bad"]
    assert report.checks[1].passed is False  # coerced to bool
    assert report.checks[0].observed == {"x": 1.5}


def test_validation_payload_deterministic_and_sorted():
    a = OracleReport(oracle="zeta", figure="f1", seeds=(1,))
    a.require("ok", True)
    b = OracleReport(oracle="alpha", figure="f2", seeds=(1,))
    b.require("ok", True)
    payload = validation_payload([a, b])
    assert [o["oracle"] for o in payload["oracles"]] == ["alpha", "zeta"]
    assert payload["passed"] is True
    assert (json.dumps(validation_payload([a, b]), sort_keys=True)
            == json.dumps(validation_payload([b, a]), sort_keys=True))


def test_write_validation_json_and_report_command(tmp_path, capsys):
    good = OracleReport(oracle="demo", figure="fig9", seeds=(1,))
    good.require("threshold", True, presto_ms=1.0, ecmp_ms=2.0)
    path = write_validation_json([good], tmp_path / "VALIDATION.json")
    assert validate_main(["report", "--in", str(path)]) == 0
    out = capsys.readouterr().out
    assert "demo" in out and "PASS" in out

    bad = OracleReport(oracle="demo", figure="fig9", seeds=(1,))
    bad.require("threshold", False, presto_ms=3.0)
    write_validation_json([bad], path)
    assert validate_main(["report", "--in", str(path)]) == 1


def test_report_command_rejects_missing_or_garbage_file(tmp_path):
    assert validate_main(["report", "--in", str(tmp_path / "nope.json")]) == 2
    garbage = tmp_path / "bad.json"
    garbage.write_text("{not json")
    assert validate_main(["report", "--in", str(garbage)]) == 2


# --- CLI argument validation --------------------------------------------------

def test_cli_list_names_all_oracles(capsys):
    from repro.validate.oracles import oracle_names

    assert validate_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in oracle_names():
        assert name in out


@pytest.mark.parametrize("argv, fragment", [
    (["run"], "no oracles selected"),
    (["run", "failover", "--all"], "not both"),
    (["run", "bogus_oracle"], "unknown oracle"),
    (["run", "--all", "--jobs", "0"], "--jobs"),
    (["run", "--all", "--jobs", "-2"], "--jobs"),
    (["run", "--all", "--timeout", "0"], "--timeout"),
    (["run", "--all", "--timeout", "-1"], "--timeout"),
    (["run", "--all", "--scale", "0"], "--scale"),
    (["run", "--all", "--scale", "-0.5"], "--scale"),
    (["run", "--all", "--seeds", ""], "at least one seed"),
    (["run", "--all", "--seeds", "1,x"], "integers"),
])
def test_cli_run_rejects_bad_arguments(argv, fragment, capsys):
    assert validate_main(argv) == 2
    assert fragment in capsys.readouterr().err


def test_run_oracles_validates_inputs():
    from repro.validate.oracles import get_oracle, run_oracles

    with pytest.raises(ValueError, match="seed"):
        run_oracles(("failover",), seeds=())
    with pytest.raises(ValueError, match="scale"):
        run_oracles(("failover",), seeds=(1,), scale=0)
    with pytest.raises(ValueError):
        get_oracle("not_an_oracle")


# --- tier 2: real oracles end-to-end -----------------------------------------

@pytest.mark.tier2
def test_cli_run_end_to_end_writes_validation_json(tmp_path):
    out = tmp_path / "VALIDATION.json"
    rc = validate_main([
        "run", "gro_reordering", "failover",
        "--seeds", "1,2", "--scale", "0.3", "--jobs", "2",
        "--results-dir", str(tmp_path / "results"),
        "--out", str(out), "--quiet",
    ])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["passed"] is True
    assert ({o["oracle"] for o in payload["oracles"]}
            == {"gro_reordering", "failover"})
    for oracle in payload["oracles"]:
        assert oracle["seeds"] == [1, 2]
        assert oracle["checks"]
    assert validate_main(["report", "--in", str(out)]) == 0


@pytest.mark.tier2
def test_oracle_rerun_resumes_from_store(tmp_path, capsys):
    argv = [
        "run", "failover", "--seeds", "1", "--scale", "0.2", "--jobs", "1",
        "--results-dir", str(tmp_path),
        "--out", str(tmp_path / "VALIDATION.json"),
    ]
    assert validate_main(argv) == 0
    first = capsys.readouterr().err
    assert "ok " in first
    assert validate_main(argv) == 0
    second = capsys.readouterr().err
    assert "cached" in second
