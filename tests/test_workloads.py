"""Unit + property tests for workload generators."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.experiments.harness import Testbed, TestbedConfig
from repro.units import KB, MB, msec
from repro.workloads.flows import EmpiricalDistribution
from repro.workloads.northsouth import NorthSouthWorkload
from repro.workloads.synthetic import (
    random_bijection_pairs,
    random_pairs,
    shuffle_workload,
    stride_pairs,
)
from repro.workloads.tracedriven import KANDULA_FLOW_SIZES, TraceWorkload


class TestStride:
    def test_paper_stride8(self):
        pairs = stride_pairs(16, 8)
        assert pairs[0] == (0, 8)
        assert pairs[15] == (15, 7)
        assert len(pairs) == 16

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            stride_pairs(16, 0)
        with pytest.raises(ValueError):
            stride_pairs(16, 16)


class TestRandomPairs:
    @given(seed=st.integers(0, 1000))
    def test_never_same_pod(self, seed):
        pairs = random_pairs(16, 4, random.Random(seed))
        for src, dst in pairs:
            assert src // 4 != dst // 4

    def test_every_host_sends(self):
        pairs = random_pairs(16, 4, random.Random(0))
        assert sorted(s for s, _ in pairs) == list(range(16))


class TestBijection:
    @given(seed=st.integers(0, 200))
    def test_is_cross_pod_permutation(self, seed):
        pairs = random_bijection_pairs(16, 4, random.Random(seed))
        srcs = [s for s, _ in pairs]
        dsts = [d for _, d in pairs]
        assert sorted(srcs) == list(range(16))
        assert sorted(dsts) == list(range(16))
        for src, dst in pairs:
            assert src // 4 != dst // 4

    def test_impossible_raises(self):
        with pytest.raises(RuntimeError):
            random_bijection_pairs(4, 4, random.Random(0), max_tries=5)


class TestEmpiricalDistribution:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([(1, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalDistribution([(1, 0.5), (2, 0.4), (3, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalDistribution([(1, 0.0), (2, 0.5)])  # last != 1.0

    @given(seed=st.integers(0, 1000))
    def test_samples_within_support(self, seed):
        rng = random.Random(seed)
        lo = KANDULA_FLOW_SIZES.points[0][0]
        hi = KANDULA_FLOW_SIZES.points[-1][0]
        for _ in range(50):
            assert lo <= KANDULA_FLOW_SIZES.sample(rng) <= hi

    def test_heavy_tail_shape(self):
        """Most flows are mice, most bytes are elephant bytes."""
        rng = random.Random(7)
        samples = [KANDULA_FLOW_SIZES.sample(rng) for _ in range(20_000)]
        mice = sum(1 for s in samples if s < 100 * KB)
        assert mice / len(samples) > 0.85
        big_bytes = sum(s for s in samples if s > 1 * MB)
        assert big_bytes / sum(samples) > 0.3

    def test_scaled(self):
        scaled = KANDULA_FLOW_SIZES.scaled(10)
        assert scaled.points[0][0] == 10 * KANDULA_FLOW_SIZES.points[0][0]
        with pytest.raises(ValueError):
            KANDULA_FLOW_SIZES.scaled(0)


def mini_clos(scheme="presto"):
    return Testbed(TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                                 hosts_per_leaf=2, model_cpu=False))


def test_shuffle_workload_progresses_and_refills():
    tb = mini_clos()
    wl = shuffle_workload(tb, bytes_per_transfer=100 * KB, concurrent=2,
                          rng=random.Random(1))
    wl.start()
    tb.run(msec(30))
    assert wl.completed > 4
    # senders keep 'concurrent' transfers outstanding until queues drain
    assert len(wl.apps) >= wl.completed


def test_trace_workload_classifies_flows():
    tb = mini_clos()
    wl = TraceWorkload(tb, random.Random(3), size_scale=1.0, stop_ns=msec(30))
    wl.start()
    tb.run(msec(60))
    assert wl.flows_started > 10
    assert wl.mice_fcts_ns  # plenty of mice in the distribution
    assert all(f > 0 for f in wl.mice_fcts_ns)


def test_northsouth_attaches_wan_users():
    tb = mini_clos()
    wl = NorthSouthWorkload(tb, random.Random(1))
    assert len(wl.remote_users) == 2  # one per spine
    wl.start()
    tb.run(msec(10))
    assert wl.flows_started > 0
    # WAN users actually received data over their 100 Mbps links
    delivered = sum(
        r.delivered_bytes
        for user in wl.remote_users
        for r in user.receivers.values()
    )
    assert delivered > 0
