#!/usr/bin/env python
"""CI helper: validate the runner's telemetry exports.

Usage: python tools/check_trace_smoke.py <results-dir> <cell-label>

Checks that the Chrome trace for ``cell-label`` is valid JSON with the
expected event categories and that ``metrics.json`` carries the cell's
metric snapshot.
"""

import json
import os
import sys


def main() -> int:
    results_dir, label = sys.argv[1], sys.argv[2]
    trace_path = os.path.join(
        results_dir, "traces", label.replace("/", "_") + ".trace.json")
    trace = json.load(open(trace_path))
    events = trace["traceEvents"]
    cats = {e.get("cat") for e in events if e["ph"] != "M"}
    assert {"nic", "presto"} <= cats, f"missing categories in {cats}"
    for e in events:
        # complete spans carry durations; instants and metadata never do
        assert ("dur" in e) == (e["ph"] == "X"), e

    metrics = json.load(open(os.path.join(results_dir, "metrics.json")))
    cell = metrics["cells"][label]
    assert any(k.startswith("host.h0.") for k in cell), sorted(cell)[:5]
    assert any(k.startswith("switch.") for k in cell), sorted(cell)[:5]

    print(f"trace OK: {len(events)} events, {len(cell)} metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
