#!/usr/bin/env python
"""Regenerate the determinism golden fixtures in tests/golden/.

Usage::

    python tools/gen_golden.py            # all schemes
    python tools/gen_golden.py presto     # one scheme

Goldens pin the simulator's exact behavior (see
``repro.experiments.goldens``); only regenerate them when a change is
*meant* to alter simulation results, and review the diff.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.goldens import golden_bytes  # noqa: E402
from repro.experiments.schemes import scheme_names  # noqa: E402

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "tests", "golden")


def main(argv):
    schemes = argv[1:] or scheme_names()
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for scheme in schemes:
        path = os.path.join(GOLDEN_DIR, f"{scheme}.json")
        data = golden_bytes(scheme)
        with open(path, "w") as fh:
            fh.write(data)
        print(f"wrote {os.path.relpath(path)} ({len(data)} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
