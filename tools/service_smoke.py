#!/usr/bin/env python
"""CI smoke test for the sweep service (repro.service).

Spawns a real coordinator and two real workers as subprocesses on
localhost, runs a tiny scalability sweep through
``python -m repro.runner run ... --service URL``, then runs the same
sweep locally and asserts the two result stores hold the same records
— same hashes, specs, labels and byte-identical ``result`` payloads
(timestamps/elapsed are execution metadata and legitimately differ).

Usage::

    python tools/service_smoke.py [--workdir DIR]

Exits non-zero (with a diagnostic) on any mismatch.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SWEEP_ARGS = [
    "run", "scalability", "--schemes", "presto,ecmp", "--points", "2",
    "--seeds", "1", "--warm-ms", "1", "--measure-ms", "2",
]
PORT = 8673  # fixed localhost port; nothing else in CI uses it


def env_with_src():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"),
                    env.get("PYTHONPATH", "")) if p)
    return env


def wait_for(url, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2) as r:
                if r.status == 200:
                    return
        except OSError:
            time.sleep(0.2)
    raise RuntimeError(f"coordinator at {url} never became healthy")


def store_essence(results_dir):
    """hash -> canonicalized location-independent record fields."""
    out = {}
    store_dir = os.path.join(results_dir, "store")
    for name in sorted(os.listdir(store_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(store_dir, name)) as fh:
            record = json.load(fh)
        out[record["hash"]] = json.dumps(
            {k: record[k] for k in ("hash", "label", "spec", "result")},
            sort_keys=True)
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: a fresh tempdir)")
    ns = parser.parse_args()
    workdir = ns.workdir or tempfile.mkdtemp(prefix="service-smoke-")
    os.makedirs(workdir, exist_ok=True)
    svc_dir = os.path.join(workdir, "svc")
    local_dir = os.path.join(workdir, "local")
    url = f"http://127.0.0.1:{PORT}"
    env = env_with_src()
    procs = []
    try:
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro.service", "coordinator",
             "--port", str(PORT), "--results-dir", svc_dir],
            env=env, cwd=REPO))
        wait_for(url)
        for i in range(2):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro.service", "worker", url,
                 "--name", f"smoke-w{i}", "--poll", "0.1"],
                env=env, cwd=REPO))

        print(f"+ sweep via coordinator at {url}", flush=True)
        subprocess.run(
            [sys.executable, "-m", "repro.runner", *SWEEP_ARGS,
             "--service", url, "--results-dir",
             os.path.join(workdir, "client")],
            env=env, cwd=REPO, check=True, timeout=600)

        print("+ same sweep locally", flush=True)
        subprocess.run(
            [sys.executable, "-m", "repro.runner", *SWEEP_ARGS,
             "--jobs", "2", "--results-dir", local_dir],
            env=env, cwd=REPO, check=True, timeout=600)

        with urllib.request.urlopen(url + "/api/progress", timeout=5) as r:
            progress = json.load(r)
        assert progress["finished"] == progress["total"] > 0, progress
        assert len(progress["workers"]) == 2, progress["workers"]

        svc = store_essence(svc_dir)
        local = store_essence(local_dir)
        if svc != local:
            only_svc = set(svc) - set(local)
            only_local = set(local) - set(svc)
            differing = [h for h in set(svc) & set(local)
                         if svc[h] != local[h]]
            print(f"STORE MISMATCH: only-service={sorted(only_svc)} "
                  f"only-local={sorted(only_local)} "
                  f"differing={sorted(differing)}", file=sys.stderr)
            return 1
        print(f"service smoke OK: {len(svc)} record(s) identical across "
              "service and local runs; "
              f"{progress['finished']}/{progress['total']} jobs, "
              f"{len(progress['workers'])} workers")
        return 0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
        if ns.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
